//! Cache geometry configuration.

use crate::error::SimError;
use std::fmt;

/// What happens on a store hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Mark the line dirty; write back on eviction (the default, and what
    /// the paper's L2s do).
    #[default]
    WriteBack,
    /// Propagate every store to the next level immediately; lines are
    /// never dirty.
    WriteThrough,
}

/// What happens on a store miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WriteMissPolicy {
    /// Fetch the line and install it (the default).
    #[default]
    WriteAllocate,
    /// Forward the store without installing the line.
    NoWriteAllocate,
}

/// Geometry and timing of a set-associative cache.
///
/// ```
/// use molcache_sim::CacheConfig;
/// let cfg = CacheConfig::new(8 << 20, 8, 64)?; // 8 MB, 8-way, 64 B lines
/// assert_eq!(cfg.num_sets(), (8 << 20) / 8 / 64);
/// # Ok::<(), molcache_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u64,
    assoc: u32,
    line_size: u64,
    hit_latency: u32,
    miss_penalty: u32,
    ports: u32,
    write_policy: WritePolicy,
    write_miss_policy: WriteMissPolicy,
}

impl CacheConfig {
    /// Default hit latency in cycles (L2-class array).
    pub const DEFAULT_HIT_LATENCY: u32 = 12;
    /// Default miss penalty in cycles (memory access).
    pub const DEFAULT_MISS_PENALTY: u32 = 200;

    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidGeometry`] unless `size_bytes` and
    /// `line_size` are powers of two, `assoc >= 1`, and
    /// `size_bytes >= assoc * line_size`.
    pub fn new(size_bytes: u64, assoc: u32, line_size: u64) -> Result<Self, SimError> {
        if size_bytes == 0 || !size_bytes.is_power_of_two() {
            return Err(SimError::InvalidGeometry {
                field: "size_bytes",
                constraint: "must be a non-zero power of two",
            });
        }
        if line_size == 0 || !line_size.is_power_of_two() {
            return Err(SimError::InvalidGeometry {
                field: "line_size",
                constraint: "must be a non-zero power of two",
            });
        }
        if assoc == 0 {
            return Err(SimError::InvalidGeometry {
                field: "assoc",
                constraint: "must be at least 1",
            });
        }
        if size_bytes < assoc as u64 * line_size {
            return Err(SimError::InvalidGeometry {
                field: "size_bytes",
                constraint: "must hold at least one set (assoc * line_size)",
            });
        }
        if (size_bytes / (assoc as u64 * line_size)) == 0
            || !(size_bytes / (assoc as u64 * line_size)).is_power_of_two()
        {
            return Err(SimError::InvalidGeometry {
                field: "assoc",
                constraint: "set count (size / assoc / line) must be a power of two",
            });
        }
        Ok(CacheConfig {
            size_bytes,
            assoc,
            line_size,
            hit_latency: Self::DEFAULT_HIT_LATENCY,
            miss_penalty: Self::DEFAULT_MISS_PENALTY,
            ports: 1,
            write_policy: WritePolicy::WriteBack,
            write_miss_policy: WriteMissPolicy::WriteAllocate,
        })
    }

    /// A direct-mapped configuration.
    pub fn direct_mapped(size_bytes: u64, line_size: u64) -> Result<Self, SimError> {
        CacheConfig::new(size_bytes, 1, line_size)
    }

    /// Sets the hit latency (cycles), returning the modified config.
    pub fn with_hit_latency(mut self, cycles: u32) -> Self {
        self.hit_latency = cycles;
        self
    }

    /// Sets the miss penalty (cycles), returning the modified config.
    pub fn with_miss_penalty(mut self, cycles: u32) -> Self {
        self.miss_penalty = cycles;
        self
    }

    /// Sets the number of read/write ports (used by the power model).
    pub fn with_ports(mut self, ports: u32) -> Self {
        self.ports = ports.max(1);
        self
    }

    /// Sets the store-hit policy.
    pub fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// Sets the store-miss policy.
    pub fn with_write_miss_policy(mut self, policy: WriteMissPolicy) -> Self {
        self.write_miss_policy = policy;
        self
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.line_size)
    }

    /// Total number of line frames.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_size
    }

    /// Hit latency in cycles.
    pub fn hit_latency(&self) -> u32 {
        self.hit_latency
    }

    /// Miss penalty in cycles (added on top of the hit latency).
    pub fn miss_penalty(&self) -> u32 {
        self.miss_penalty
    }

    /// Read/write ports.
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// The store-hit policy.
    pub fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// The store-miss policy.
    pub fn write_miss_policy(&self) -> WriteMissPolicy {
        self.write_miss_policy
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let size = self.size_bytes;
        if size >= 1 << 20 && size.trailing_zeros() >= 20 {
            write!(f, "{}MB", size >> 20)?;
        } else if size >= 1 << 10 {
            write!(f, "{}KB", size >> 10)?;
        } else {
            write!(f, "{}B", size)?;
        }
        if self.assoc == 1 {
            write!(f, " DM")?;
        } else {
            write!(f, " {}way", self.assoc)?;
        }
        write!(f, " {}B-line", self.line_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derivations() {
        let cfg = CacheConfig::new(1 << 20, 4, 64).unwrap();
        assert_eq!(cfg.num_sets(), 4096);
        assert_eq!(cfg.num_lines(), 16384);
        assert_eq!(cfg.assoc(), 4);
    }

    #[test]
    fn rejects_non_power_of_two_size() {
        assert!(CacheConfig::new(3 << 19, 4, 64).is_err());
    }

    #[test]
    fn rejects_zero_assoc() {
        assert!(CacheConfig::new(1 << 20, 0, 64).is_err());
    }

    #[test]
    fn rejects_cache_smaller_than_one_set() {
        assert!(CacheConfig::new(64, 2, 64).is_err());
    }

    #[test]
    fn fully_associative_single_set_allowed() {
        let cfg = CacheConfig::new(4096, 64, 64).unwrap();
        assert_eq!(cfg.num_sets(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            CacheConfig::new(8 << 20, 4, 64).unwrap().to_string(),
            "8MB 4way 64B-line"
        );
        assert_eq!(
            CacheConfig::direct_mapped(8 << 10, 64).unwrap().to_string(),
            "8KB DM 64B-line"
        );
    }

    #[test]
    fn builder_setters() {
        let cfg = CacheConfig::new(1 << 20, 2, 64)
            .unwrap()
            .with_hit_latency(5)
            .with_miss_penalty(100)
            .with_ports(4)
            .with_write_policy(WritePolicy::WriteThrough)
            .with_write_miss_policy(WriteMissPolicy::NoWriteAllocate);
        assert_eq!(cfg.hit_latency(), 5);
        assert_eq!(cfg.miss_penalty(), 100);
        assert_eq!(cfg.ports(), 4);
        assert_eq!(cfg.write_policy(), WritePolicy::WriteThrough);
        assert_eq!(cfg.write_miss_policy(), WriteMissPolicy::NoWriteAllocate);
    }

    #[test]
    fn default_policies_are_writeback_allocate() {
        let cfg = CacheConfig::new(1 << 20, 2, 64).unwrap();
        assert_eq!(cfg.write_policy(), WritePolicy::WriteBack);
        assert_eq!(cfg.write_miss_policy(), WriteMissPolicy::WriteAllocate);
    }
}
