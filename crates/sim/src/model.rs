//! The common interface every cache under test implements.

use crate::stats::CacheStats;
use molcache_trace::{AccessKind, Address, Asid, MemAccess};

/// One request presented to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Requesting application.
    pub asid: Asid,
    /// Byte address.
    pub addr: Address,
    /// Load or store.
    pub kind: AccessKind,
}

impl From<MemAccess> for Request {
    fn from(acc: MemAccess) -> Self {
        Request {
            asid: acc.asid,
            addr: acc.addr,
            kind: acc.kind,
        }
    }
}

/// What happened when a request was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the request hit.
    pub hit: bool,
    /// Cycles consumed by the request.
    pub latency: u32,
    /// Whether a dirty line was written back.
    pub writeback: bool,
    /// Lines brought in from the next level (0 on a hit; >1 when the
    /// region uses an enlarged line size).
    pub lines_fetched: u32,
}

impl AccessOutcome {
    /// A hit with the given latency.
    pub const fn hit(latency: u32) -> Self {
        AccessOutcome {
            hit: true,
            latency,
            writeback: false,
            lines_fetched: 0,
        }
    }

    /// A miss fetching one line.
    pub const fn miss(latency: u32, writeback: bool) -> Self {
        AccessOutcome {
            hit: false,
            latency,
            writeback,
            lines_fetched: 1,
        }
    }
}

/// Activity-event counters consumed by the power model.
///
/// Traditional caches probe `assoc` ways per access; the molecular cache
/// probes only the ASID-matching molecules of the home tile (plus remote
/// tiles on an Ulmo search). Keeping these as raw event counts lets
/// `molcache-power` attach per-event energies appropriate to each array's
/// geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Activity {
    /// Requests serviced.
    pub accesses: u64,
    /// Way- or molecule-probes performed (tag+data array reads).
    pub ways_probed: u64,
    /// Lines filled from the next level.
    pub line_fills: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// ASID comparisons (molecular cache only).
    pub asid_compares: u64,
    /// Remote-tile searches launched by Ulmo (molecular cache only).
    pub ulmo_searches: u64,
}

impl Activity {
    /// Merges another activity record into this one.
    pub fn merge(&mut self, other: &Activity) {
        self.accesses += other.accesses;
        self.ways_probed += other.ways_probed;
        self.line_fills += other.line_fills;
        self.writebacks += other.writebacks;
        self.asid_compares += other.asid_compares;
        self.ulmo_searches += other.ulmo_searches;
    }

    /// Average ways/molecules probed per access.
    pub fn probes_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.ways_probed as f64 / self.accesses as f64
        }
    }
}

/// A cache that can service a trace.
///
/// Implemented by [`SetAssocCache`](crate::set_assoc::SetAssocCache), the
/// partitioned baselines, and by `molcache_core::MolecularCache`. The
/// experiment harnesses in `molcache-bench` are generic over this trait,
/// so the paper's "same trace through Dinero and through the molecular
/// cache" methodology is a single code path.
pub trait CacheModel {
    /// Services one request.
    fn access(&mut self, req: Request) -> AccessOutcome;

    /// Accumulated hit/miss statistics.
    fn stats(&self) -> &CacheStats;

    /// Accumulated activity events (for the power model).
    fn activity(&self) -> Activity;

    /// Clears statistics and activity counters (not cache contents).
    fn reset_stats(&mut self);

    /// Human-readable description, e.g. `"8MB 4way 64B-line"`.
    fn describe(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_from_memaccess() {
        let acc = MemAccess::write(Asid::new(3), Address::new(0x80));
        let req = Request::from(acc);
        assert_eq!(req.asid, Asid::new(3));
        assert_eq!(req.addr, Address::new(0x80));
        assert!(req.kind.is_write());
    }

    #[test]
    fn outcome_constructors() {
        let h = AccessOutcome::hit(10);
        assert!(h.hit);
        assert_eq!(h.lines_fetched, 0);
        let m = AccessOutcome::miss(210, true);
        assert!(!m.hit);
        assert!(m.writeback);
        assert_eq!(m.lines_fetched, 1);
    }

    #[test]
    fn activity_merge_and_rates() {
        let mut a = Activity {
            accesses: 10,
            ways_probed: 40,
            ..Activity::default()
        };
        let b = Activity {
            accesses: 10,
            ways_probed: 20,
            line_fills: 5,
            ..Activity::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 20);
        assert!((a.probes_per_access() - 3.0).abs() < 1e-12);
        assert_eq!(Activity::default().probes_per_access(), 0.0);
    }
}
