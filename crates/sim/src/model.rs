//! The common interface every cache under test implements.

use crate::stage::{StageActivity, StageBreakdown};
use crate::stats::CacheStats;
use molcache_trace::{AccessKind, Address, Asid, MemAccess};

/// One request presented to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Requesting application.
    pub asid: Asid,
    /// Byte address.
    pub addr: Address,
    /// Load or store.
    pub kind: AccessKind,
}

impl From<MemAccess> for Request {
    fn from(acc: MemAccess) -> Self {
        Request {
            asid: acc.asid,
            addr: acc.addr,
            kind: acc.kind,
        }
    }
}

/// What happened when a request was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the request hit.
    pub hit: bool,
    /// Cycles consumed by the request.
    pub latency: u32,
    /// Whether a dirty line was written back.
    pub writeback: bool,
    /// Lines brought in from the next level (0 on a hit; >1 when the
    /// region uses an enlarged line size).
    pub lines_fetched: u32,
    /// Per-stage breakdown of the access, for caches with a staged
    /// pipeline (the molecular cache). `None` for models whose access
    /// path has no stage decomposition. When present, the stage cycles
    /// sum exactly to `latency`.
    pub stages: Option<StageBreakdown>,
}

impl AccessOutcome {
    /// A hit with the given latency.
    pub const fn hit(latency: u32) -> Self {
        AccessOutcome {
            hit: true,
            latency,
            writeback: false,
            lines_fetched: 0,
            stages: None,
        }
    }

    /// A miss fetching one line.
    pub const fn miss(latency: u32, writeback: bool) -> Self {
        AccessOutcome {
            hit: false,
            latency,
            writeback,
            lines_fetched: 1,
            stages: None,
        }
    }

    /// Attaches a per-stage breakdown.
    #[must_use]
    pub const fn with_stages(mut self, stages: StageBreakdown) -> Self {
        self.stages = Some(stages);
        self
    }
}

/// Activity-event counters consumed by the power model.
///
/// Traditional caches probe `assoc` ways per access; the molecular cache
/// probes only the ASID-matching molecules of the home tile (plus remote
/// tiles on an Ulmo search). Keeping these as raw event counts lets
/// `molcache-power` attach per-event energies appropriate to each array's
/// geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Activity {
    /// Requests serviced.
    pub accesses: u64,
    /// Way- or molecule-probes performed (tag+data array reads).
    pub ways_probed: u64,
    /// Lines filled from the next level.
    pub line_fills: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// ASID comparisons (molecular cache only).
    pub asid_compares: u64,
    /// Remote-tile searches launched by Ulmo (molecular cache only).
    pub ulmo_searches: u64,
    /// Per-stage decomposition of the counters above (staged caches
    /// only; all-zero for models without a pipeline). For the molecular
    /// cache the stage totals tile the aggregates: gate + Ulmo
    /// `asid_compares` equal [`Activity::asid_compares`], home + Ulmo
    /// `tag_probes` equal [`Activity::ways_probed`], fill
    /// `frames_touched` equal [`Activity::line_fills`], and the stage
    /// cycles sum to the total latency of all serviced accesses.
    pub stages: StageActivity,
}

impl Activity {
    /// Merges another activity record into this one.
    pub fn merge(&mut self, other: &Activity) {
        self.accesses += other.accesses;
        self.ways_probed += other.ways_probed;
        self.line_fills += other.line_fills;
        self.writebacks += other.writebacks;
        self.asid_compares += other.asid_compares;
        self.ulmo_searches += other.ulmo_searches;
        self.stages.merge(&other.stages);
    }

    /// Folds one access's stage breakdown into the record: the per-stage
    /// totals absorb the traces, and the aggregate compare/probe counters
    /// absorb the stage sums (fills and writebacks are counted by the
    /// fill machinery itself, which also owns their non-pipeline sources
    /// such as region teardown flushes).
    pub fn record_stages(&mut self, b: &StageBreakdown) {
        self.asid_compares += u64::from(b.total_asid_compares());
        self.ways_probed += u64::from(b.total_tag_probes());
        self.stages.absorb(b);
    }

    /// Average ways/molecules probed per access.
    pub fn probes_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.ways_probed as f64 / self.accesses as f64
        }
    }
}

/// Aggregate outcome of a batched access sequence.
///
/// Per-request outcomes collapse into event sums — exactly the totals a
/// driver loop over [`AccessOutcome`]s would accumulate, so a batch can
/// replace a loop without changing any measured number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Requests serviced.
    pub accesses: u64,
    /// Requests that hit.
    pub hits: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Lines brought in from the next level.
    pub lines_fetched: u64,
    /// Cycles consumed across all requests.
    pub total_latency: u64,
}

impl BatchOutcome {
    /// Folds one per-request outcome into the totals.
    pub fn note(&mut self, out: AccessOutcome) {
        self.accesses += 1;
        self.hits += u64::from(out.hit);
        self.writebacks += u64::from(out.writeback);
        self.lines_fetched += u64::from(out.lines_fetched);
        self.total_latency += u64::from(out.latency);
    }

    /// Combines the totals of another batch into this one.
    pub fn merge(&mut self, other: &BatchOutcome) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.writebacks += other.writebacks;
        self.lines_fetched += other.lines_fetched;
        self.total_latency += other.total_latency;
    }

    /// Requests that missed.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

/// A cache that can service a trace.
///
/// Implemented by [`SetAssocCache`](crate::set_assoc::SetAssocCache), the
/// partitioned baselines, and by `molcache_core::MolecularCache`. The
/// experiment harnesses in `molcache-bench` are generic over this trait,
/// so the paper's "same trace through Dinero and through the molecular
/// cache" methodology is a single code path.
pub trait CacheModel {
    /// Services one request.
    fn access(&mut self, req: Request) -> AccessOutcome;

    /// Services a slice of requests in order.
    ///
    /// Semantically identical to calling [`access`](CacheModel::access)
    /// once per request and summing the outcomes; implementations may
    /// override it to amortize per-request dispatch (the molecular cache
    /// hoists its ASID-gate/region check across runs of same-ASID
    /// requests) but must keep the results bit-identical to the loop.
    fn access_batch(&mut self, reqs: &[Request]) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        for req in reqs {
            out.note(self.access(*req));
        }
        out
    }

    /// Accumulated hit/miss statistics.
    fn stats(&self) -> &CacheStats;

    /// Accumulated activity events (for the power model).
    fn activity(&self) -> Activity;

    /// Clears statistics and activity counters (not cache contents).
    fn reset_stats(&mut self);

    /// Human-readable description, e.g. `"8MB 4way 64B-line"`.
    fn describe(&self) -> String;
}

/// Observes every serviced access — the publish point telemetry layers
/// hook into.
///
/// The observed drivers in [`crate::cmp`] call
/// [`on_access`](AccessObserver::on_access) once per request with the
/// request and its outcome, in trace order. Implementations live above
/// this crate (e.g. `molcache-telemetry`'s recorder builds latency
/// histograms from these events); the simulator itself only defines the
/// hook so that observation never disturbs what is measured.
pub trait AccessObserver {
    /// Called after `req` was serviced with outcome `out`.
    fn on_access(&mut self, req: &Request, out: &AccessOutcome);
}

/// Ignores every event; drivers observed by it behave like unobserved
/// ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl AccessObserver for NullObserver {
    #[inline]
    fn on_access(&mut self, _req: &Request, _out: &AccessOutcome) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_from_memaccess() {
        let acc = MemAccess::write(Asid::new(3), Address::new(0x80));
        let req = Request::from(acc);
        assert_eq!(req.asid, Asid::new(3));
        assert_eq!(req.addr, Address::new(0x80));
        assert!(req.kind.is_write());
    }

    #[test]
    fn outcome_constructors() {
        let h = AccessOutcome::hit(10);
        assert!(h.hit);
        assert_eq!(h.lines_fetched, 0);
        let m = AccessOutcome::miss(210, true);
        assert!(!m.hit);
        assert!(m.writeback);
        assert_eq!(m.lines_fetched, 1);
    }

    #[test]
    fn batch_outcome_note_and_merge() {
        let mut b = BatchOutcome::default();
        b.note(AccessOutcome::hit(5));
        b.note(AccessOutcome::miss(210, true));
        assert_eq!(b.accesses, 2);
        assert_eq!(b.hits, 1);
        assert_eq!(b.misses(), 1);
        assert_eq!(b.writebacks, 1);
        assert_eq!(b.lines_fetched, 1);
        assert_eq!(b.total_latency, 215);
        let mut c = BatchOutcome::default();
        c.note(AccessOutcome::hit(7));
        c.merge(&b);
        assert_eq!(c.accesses, 3);
        assert_eq!(c.total_latency, 222);
    }

    #[test]
    fn activity_merge_and_rates() {
        let mut a = Activity {
            accesses: 10,
            ways_probed: 40,
            ..Activity::default()
        };
        let b = Activity {
            accesses: 10,
            ways_probed: 20,
            line_fills: 5,
            ..Activity::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 20);
        assert!((a.probes_per_access() - 3.0).abs() < 1e-12);
        assert_eq!(Activity::default().probes_per_access(), 0.0);
    }
}
