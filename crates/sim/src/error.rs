//! Error types for cache configuration and simulation.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring or driving a simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A cache geometry parameter was invalid.
    InvalidGeometry {
        /// The offending parameter.
        field: &'static str,
        /// The constraint that was violated.
        constraint: &'static str,
    },
    /// A partitioning directive referenced an unknown application.
    UnknownAsid(molcache_trace::Asid),
    /// A partitioning directive was inconsistent (e.g. way masks that do
    /// not cover any way).
    InvalidPartition(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidGeometry { field, constraint } => {
                write!(f, "invalid cache geometry `{field}`: {constraint}")
            }
            SimError::UnknownAsid(asid) => write!(f, "unknown {asid}"),
            SimError::InvalidPartition(msg) => write!(f, "invalid partition: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::InvalidGeometry {
            field: "assoc",
            constraint: "must divide set count",
        };
        assert_eq!(
            e.to_string(),
            "invalid cache geometry `assoc`: must divide set count"
        );
        assert!(SimError::InvalidPartition("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn send_sync_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
