//! Private L1 caches and the L1 miss filter.
//!
//! The paper records L1-D miss traces (from SESC) and feeds them to the L2
//! simulators. [`L1Filter`] reproduces that flow: it wraps a per-core
//! [`TraceSource`], services each reference in a private L1, and emits only
//! the L1 misses (plus dirty writebacks) — i.e. exactly the stream an L2
//! would observe.

use crate::config::CacheConfig;
use crate::model::{CacheModel, Request};
use crate::set_assoc::SetAssocCache;
use molcache_trace::gen::TraceSource;
use molcache_trace::{AccessKind, Asid, MemAccess};

/// Default L1 data cache of the simulated cores: 16 KB, 4-way, 64 B lines
/// (a typical configuration for the paper's era).
pub fn default_l1_config() -> CacheConfig {
    CacheConfig::new(16 * 1024, 4, 64)
        .expect("static L1 geometry is valid")
        .with_hit_latency(2)
        .with_miss_penalty(0)
}

/// Wraps an application stream with a private L1; yields the L2-visible
/// reference stream (misses and writebacks).
pub struct L1Filter<S> {
    source: S,
    l1: SetAssocCache,
    /// Pending writeback to emit before servicing new references.
    pending_writeback: Option<MemAccess>,
    references: u64,
}

impl<S: TraceSource> L1Filter<S> {
    /// Creates a filter with the [`default_l1_config`].
    pub fn new(source: S) -> Self {
        L1Filter::with_config(source, default_l1_config())
    }

    /// Creates a filter with an explicit L1 geometry.
    pub fn with_config(source: S, cfg: CacheConfig) -> Self {
        L1Filter {
            source,
            l1: SetAssocCache::lru(cfg),
            pending_writeback: None,
            references: 0,
        }
    }

    /// Core-side references consumed so far.
    pub fn references(&self) -> u64 {
        self.references
    }

    /// Miss rate of the private L1 so far.
    pub fn l1_miss_rate(&self) -> f64 {
        self.l1.stats().global.miss_rate()
    }
}

impl<S: TraceSource> TraceSource for L1Filter<S> {
    fn next_access(&mut self) -> Option<MemAccess> {
        if let Some(wb) = self.pending_writeback.take() {
            return Some(wb);
        }
        loop {
            let acc = self.source.next_access()?;
            self.references += 1;
            let out = self.l1.access(Request::from(acc));
            if out.hit {
                continue;
            }
            let miss = MemAccess::new(acc.asid, acc.addr.align_down(64), acc.kind);
            if out.writeback {
                // The evicted line's address is not tracked per-victim by
                // the model; emit the writeback against the same set by
                // reusing the miss address. This preserves traffic volume,
                // which is what the L2 power/miss accounting needs.
                self.pending_writeback = Some(MemAccess::new(
                    acc.asid,
                    acc.addr.align_down(64),
                    AccessKind::Write,
                ));
            }
            return Some(miss);
        }
    }

    fn asid(&self) -> Asid {
        self.source.asid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molcache_trace::gen::StrideSource;
    use molcache_trace::Address;

    #[test]
    fn repeated_line_filtered_after_first_miss() {
        // 1000 references hammering one line: exactly one reaches L2.
        let src = StrideSource::new(Asid::new(1), Address::new(0), 64, 8, 0.0, 1).take(1000);
        let mut f = L1Filter::new(src);
        assert!(f.next_access().is_some(), "cold miss reaches L2");
        assert!(f.next_access().is_none(), "all further references hit L1");
        assert_eq!(f.references(), 1000);
    }

    #[test]
    fn streaming_passes_one_miss_per_line() {
        let lines = 512u64;
        let src =
            StrideSource::new(Asid::new(1), Address::new(0), lines * 64, 64, 0.0, 1).take(lines);
        let mut f = L1Filter::new(src);
        let mut l2_refs = 0;
        while f.next_access().is_some() {
            l2_refs += 1;
        }
        assert_eq!(l2_refs, lines, "every line misses L1 exactly once");
        assert_eq!(f.references(), lines);
    }

    #[test]
    fn small_loop_fully_absorbed_by_l1() {
        // 8 KB loop fits in the 16 KB L1: second sweep produces no traffic.
        let lines = 128u64;
        let src = StrideSource::new(Asid::new(1), Address::new(0), lines * 64, 64, 0.0, 1)
            .take(lines * 4);
        let mut f = L1Filter::new(src);
        let mut l2_refs = 0;
        while f.next_access().is_some() {
            l2_refs += 1;
        }
        assert_eq!(l2_refs, lines, "only the cold sweep reaches L2");
        assert!(f.l1_miss_rate() < 0.26);
    }

    #[test]
    fn writebacks_emitted_as_writes() {
        // Write-heavy stream larger than L1 forces dirty evictions.
        let src =
            StrideSource::new(Asid::new(1), Address::new(0), 64 * 1024, 64, 1.0, 1).take(4096);
        let mut f = L1Filter::new(src);
        let mut total = 0;
        while let Some(acc) = f.next_access() {
            total += 1;
            assert!(acc.kind.is_write(), "all-store stream stays stores");
        }
        // 64 KB cyclic stream over a 16 KB L1: all 4096 references miss,
        // and dirty evictions add writeback traffic on top.
        assert!(total > 4096, "writebacks must add L2 traffic, got {total}");
    }

    #[test]
    fn asid_passthrough() {
        let src = StrideSource::new(Asid::new(9), Address::new(0), 4096, 64, 0.0, 1);
        let f = L1Filter::new(src);
        assert_eq!(f.asid(), Asid::new(9));
    }
}
