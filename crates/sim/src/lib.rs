//! # molcache-sim — trace-driven cache simulation substrate
//!
//! This crate plays the role of the paper's simulation infrastructure:
//! a feature-equivalent replacement for the modified **Dinero** cache
//! simulator (set-associative caches of any size/associativity/line size
//! with LRU, FIFO, Random and tree-PLRU replacement) and for the parts of
//! **SESC** the paper actually uses (a CMP front end that interleaves the
//! reference streams of concurrently running applications onto a shared
//! L2, with optional private L1s).
//!
//! The crate defines the [`CacheModel`] trait that *both* the traditional
//! caches here and the molecular cache in `molcache-core` implement, so
//! every experiment harness is generic over the cache under test. It also
//! defines [`Activity`] — the activity-event counts that
//! `molcache-power` converts into dynamic energy.
//!
//! Extension baselines from the paper's related-work section are included:
//! column caching (way partitioning) and Suh et al.'s Modified-LRU
//! partitioning ([`partition`]).
//!
//! ## Example: measure a benchmark's miss rate on a 1 MB 4-way L2
//!
//! ```
//! use molcache_sim::{config::CacheConfig, set_assoc::SetAssocCache, cmp::run_source};
//! use molcache_trace::{presets::Benchmark, Asid};
//!
//! let cfg = CacheConfig::new(1 << 20, 4, 64)?;
//! let mut l2 = SetAssocCache::lru(cfg);
//! let src = Benchmark::Ammp.source(Asid::new(1), 42);
//! let summary = run_source(src, &mut l2, 200_000);
//! assert!(summary.global.miss_rate() < 0.20);
//! # Ok::<(), molcache_sim::SimError>(())
//! ```

pub mod cmp;
pub mod coherence;
pub mod config;
pub mod error;
pub mod hierarchy;
pub mod l1;
pub mod model;
pub mod partition;
pub mod replacement;
pub mod set_assoc;
pub mod stage;
pub mod stats;

pub use config::CacheConfig;
pub use error::SimError;
pub use model::{
    AccessObserver, AccessOutcome, Activity, BatchOutcome, CacheModel, NullObserver, Request,
};
pub use set_assoc::SetAssocCache;
pub use stage::{Stage, StageActivity, StageBreakdown, StageTotals, StageTrace};
pub use stats::{AppStats, CacheStats};
