//! Per-set replacement policies for traditional caches.
//!
//! Dinero's policy set (LRU, FIFO, Random) plus tree-PLRU. Policy state is
//! kept per set in a [`SetPolicy`] value; the cache core calls
//! [`SetPolicy::on_hit`] / [`SetPolicy::on_fill`] and asks for a
//! [`SetPolicy::victim`] when the set is full.

use molcache_trace::rng::Rng;

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Least-recently-used (exact, timestamp-based).
    Lru,
    /// First-in-first-out (fill order).
    Fifo,
    /// Uniformly random victim.
    Random,
    /// Tree-based pseudo-LRU.
    PlruTree,
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Policy::Lru => f.write_str("LRU"),
            Policy::Fifo => f.write_str("FIFO"),
            Policy::Random => f.write_str("Random"),
            Policy::PlruTree => f.write_str("PLRU"),
        }
    }
}

/// Replacement metadata for one set.
#[derive(Debug, Clone)]
pub struct SetPolicy {
    policy: Policy,
    /// LRU/FIFO: per-way timestamps. PLRU: tree bits packed in `meta[0]`.
    meta: Vec<u64>,
    clock: u64,
}

impl SetPolicy {
    /// Creates metadata for a set of `ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`, or if `policy` is [`Policy::PlruTree`] and
    /// `ways` is not a power of two (the tree requires it).
    pub fn new(policy: Policy, ways: usize) -> Self {
        assert!(ways > 0, "set must have at least one way");
        if policy == Policy::PlruTree {
            assert!(
                ways.is_power_of_two(),
                "tree-PLRU requires power-of-two associativity"
            );
        }
        SetPolicy {
            policy,
            meta: vec![0; ways],
            clock: 0,
        }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.meta.len()
    }

    /// Notifies the policy of a hit in `way`.
    pub fn on_hit(&mut self, way: usize) {
        match self.policy {
            Policy::Lru => {
                self.clock += 1;
                self.meta[way] = self.clock;
            }
            Policy::Fifo | Policy::Random => {}
            Policy::PlruTree => self.touch_plru(way),
        }
    }

    /// Notifies the policy that `way` was filled with a new line.
    pub fn on_fill(&mut self, way: usize) {
        match self.policy {
            Policy::Lru | Policy::Fifo => {
                self.clock += 1;
                self.meta[way] = self.clock;
            }
            Policy::Random => {}
            Policy::PlruTree => self.touch_plru(way),
        }
    }

    /// Chooses a victim way (the set is full).
    pub fn victim(&mut self, rng: &mut Rng) -> usize {
        match self.policy {
            Policy::Lru | Policy::Fifo => self
                .meta
                .iter()
                .enumerate()
                .min_by_key(|(_, &ts)| ts)
                .map(|(i, _)| i)
                .expect("non-empty set"),
            Policy::Random => rng.gen_index(self.meta.len()),
            Policy::PlruTree => self.plru_victim(),
        }
    }

    /// Chooses a victim among an allowed subset of ways (used by column
    /// caching / Modified-LRU partitioning). Falls back to the first
    /// allowed way if the policy's preferred victim is excluded.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty.
    pub fn victim_among(&mut self, allowed: &[usize], rng: &mut Rng) -> usize {
        assert!(!allowed.is_empty(), "victim_among needs candidates");
        match self.policy {
            Policy::Lru | Policy::Fifo => allowed
                .iter()
                .copied()
                .min_by_key(|&w| self.meta[w])
                .expect("non-empty candidates"),
            Policy::Random => allowed[rng.gen_index(allowed.len())],
            Policy::PlruTree => {
                let v = self.plru_victim();
                if allowed.contains(&v) {
                    v
                } else {
                    allowed[rng.gen_index(allowed.len())]
                }
            }
        }
    }

    // Tree PLRU: bits of meta[0] encode internal nodes; bit = 0 means the
    // "cold" side is the left subtree.
    fn touch_plru(&mut self, way: usize) {
        let ways = self.meta.len();
        let mut node = 1usize; // 1-based heap index
        let mut lo = 0usize;
        let mut hi = ways;
        let mut bits = self.meta[0];
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Accessed left: mark right as cold-side (bit = 1).
                bits |= 1 << node;
                hi = mid;
                node *= 2;
            } else {
                bits &= !(1 << node);
                lo = mid;
                node = node * 2 + 1;
            }
        }
        self.meta[0] = bits;
    }

    fn plru_victim(&self) -> usize {
        let ways = self.meta.len();
        let bits = self.meta[0];
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if bits & (1 << node) != 0 {
                // Cold side is right.
                lo = mid;
                node = node * 2 + 1;
            } else {
                hi = mid;
                node *= 2;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = SetPolicy::new(Policy::Lru, 4);
        for w in 0..4 {
            p.on_fill(w);
        }
        p.on_hit(0); // 0 becomes most recent; 1 is now least recent
        let mut rng = Rng::seeded(1);
        assert_eq!(p.victim(&mut rng), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = SetPolicy::new(Policy::Fifo, 4);
        for w in 0..4 {
            p.on_fill(w);
        }
        p.on_hit(0); // FIFO must still evict way 0 (oldest fill)
        let mut rng = Rng::seeded(1);
        assert_eq!(p.victim(&mut rng), 0);
    }

    #[test]
    fn random_covers_all_ways() {
        let mut p = SetPolicy::new(Policy::Random, 4);
        let mut rng = Rng::seeded(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[p.victim(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn plru_never_evicts_just_touched() {
        let mut p = SetPolicy::new(Policy::PlruTree, 8);
        let mut rng = Rng::seeded(3);
        for w in 0..8 {
            p.on_fill(w);
        }
        for touched in 0..8 {
            p.on_hit(touched);
            let v = p.victim(&mut rng);
            assert_ne!(v, touched, "PLRU evicted the just-touched way");
        }
    }

    #[test]
    fn plru_two_way_behaves_like_lru() {
        let mut p = SetPolicy::new(Policy::PlruTree, 2);
        let mut rng = Rng::seeded(4);
        p.on_fill(0);
        p.on_fill(1);
        p.on_hit(0);
        assert_eq!(p.victim(&mut rng), 1);
        p.on_hit(1);
        assert_eq!(p.victim(&mut rng), 0);
    }

    #[test]
    fn victim_among_restricts() {
        let mut p = SetPolicy::new(Policy::Lru, 4);
        for w in 0..4 {
            p.on_fill(w);
        }
        let mut rng = Rng::seeded(5);
        // Way 0 is globally LRU, but only {2,3} are allowed.
        let v = p.victim_among(&[2, 3], &mut rng);
        assert_eq!(v, 2);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two() {
        SetPolicy::new(Policy::PlruTree, 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Policy::Lru.to_string(), "LRU");
        assert_eq!(Policy::PlruTree.to_string(), "PLRU");
    }

    use proptest::prelude::*;

    fn policy_from(tag: u8) -> Policy {
        match tag % 4 {
            0 => Policy::Lru,
            1 => Policy::Fifo,
            2 => Policy::Random,
            _ => Policy::PlruTree,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// After any interleaving of hits and fills, every policy's victim
        /// is a valid way index, and `victim_among` only ever picks from
        /// the allowed subset.
        #[test]
        fn victims_stay_in_bounds(
            tag in 0u8..4,
            ways_log2 in 0u8..4,
            ops in proptest::collection::vec(
                (proptest::bool::ANY, proptest::num::u64::ANY), 0..64),
            seed in proptest::num::u64::ANY,
            allowed_mask in proptest::num::u64::ANY,
        ) {
            let policy = policy_from(tag);
            let ways = 1usize << ways_log2; // power of two so PLRU is legal
            let mut p = SetPolicy::new(policy, ways);
            let mut rng = Rng::seeded(seed | 1);
            for (is_hit, way) in ops {
                let way = (way % ways as u64) as usize;
                if is_hit {
                    p.on_hit(way);
                } else {
                    p.on_fill(way);
                }
            }

            let v = p.victim(&mut rng);
            prop_assert!(v < ways, "victim {v} out of {ways} ways");

            let allowed: Vec<usize> =
                (0..ways).filter(|w| allowed_mask & (1 << w) != 0).collect();
            prop_assume!(!allowed.is_empty());
            let v = p.victim_among(&allowed, &mut rng);
            prop_assert!(allowed.contains(&v), "victim {v} not in {allowed:?}");
        }
    }
}
