//! The classic set-associative cache (the "Dinero" role).

use crate::config::{CacheConfig, WriteMissPolicy, WritePolicy};
use crate::model::{AccessOutcome, Activity, CacheModel, Request};
use crate::replacement::{Policy, SetPolicy};
use crate::stats::CacheStats;
use molcache_trace::rng::Rng;
use molcache_trace::Asid;

/// One line frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LineSlot {
    pub tag: u64,
    pub valid: bool,
    pub dirty: bool,
    pub asid: Asid,
}

impl LineSlot {
    pub(crate) const EMPTY: LineSlot = LineSlot {
        tag: 0,
        valid: false,
        dirty: false,
        asid: Asid::NONE,
    };
}

/// A set-associative, write-back / write-allocate cache.
///
/// Supports any power-of-two geometry and the policies in
/// [`Policy`]. This is the baseline model for every
/// traditional-cache configuration in the paper (direct mapped through
/// 8-way, 1–8 MB).
///
/// ```
/// use molcache_sim::{CacheConfig, SetAssocCache, Request, CacheModel};
/// use molcache_trace::{Address, Asid, AccessKind};
///
/// let mut c = SetAssocCache::lru(CacheConfig::new(64 * 1024, 4, 64)?);
/// let req = Request { asid: Asid::new(1), addr: Address::new(0x1000), kind: AccessKind::Read };
/// assert!(!c.access(req).hit);   // cold miss
/// assert!(c.access(req).hit);    // now resident
/// # Ok::<(), molcache_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    policy_kind: Policy,
    lines: Vec<LineSlot>,
    policies: Vec<SetPolicy>,
    rng: Rng,
    stats: CacheStats,
    activity: Activity,
}

impl SetAssocCache {
    /// Creates a cache with the given replacement policy.
    pub fn new(cfg: CacheConfig, policy: Policy) -> Self {
        let sets = cfg.num_sets() as usize;
        let assoc = cfg.assoc() as usize;
        SetAssocCache {
            cfg,
            policy_kind: policy,
            lines: vec![LineSlot::EMPTY; sets * assoc],
            policies: (0..sets).map(|_| SetPolicy::new(policy, assoc)).collect(),
            rng: Rng::seeded(0x5E7A_550C ^ cfg.size_bytes()),
            stats: CacheStats::new(),
            activity: Activity::default(),
        }
    }

    /// Creates an LRU cache (the common baseline).
    pub fn lru(cfg: CacheConfig) -> Self {
        SetAssocCache::new(cfg, Policy::Lru)
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// The replacement policy in use.
    pub fn policy(&self) -> Policy {
        self.policy_kind
    }

    /// Number of valid lines currently resident (test/diagnostic helper).
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    fn index_and_tag(&self, addr: molcache_trace::Address) -> (usize, u64) {
        let line = addr.line(self.cfg.line_size()).0;
        let sets = self.cfg.num_sets();
        ((line % sets) as usize, line / sets)
    }

    fn set_slots(&mut self, set: usize) -> &mut [LineSlot] {
        let assoc = self.cfg.assoc() as usize;
        &mut self.lines[set * assoc..(set + 1) * assoc]
    }

    /// Looks up without modifying replacement state or stats
    /// (diagnostic / coherence probe).
    pub fn probe(&self, req: Request) -> bool {
        let (set, tag) = self.index_and_tag(req.addr);
        let assoc = self.cfg.assoc() as usize;
        self.lines[set * assoc..(set + 1) * assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates a line if present; returns whether it was dirty.
    pub fn invalidate(&mut self, req: Request) -> Option<bool> {
        let (set, tag) = self.index_and_tag(req.addr);
        let slots = self.set_slots(set);
        for slot in slots.iter_mut() {
            if slot.valid && slot.tag == tag {
                let dirty = slot.dirty;
                *slot = LineSlot::EMPTY;
                return Some(dirty);
            }
        }
        None
    }
}

impl CacheModel for SetAssocCache {
    fn access(&mut self, req: Request) -> AccessOutcome {
        let (set, tag) = self.index_and_tag(req.addr);
        let assoc = self.cfg.assoc() as usize;
        self.activity.accesses += 1;
        // A traditional cache probes all ways of the indexed set in
        // parallel, every access.
        self.activity.ways_probed += assoc as u64;

        // Hit path.
        let slots = &mut self.lines[set * assoc..(set + 1) * assoc];
        if let Some(way) = slots.iter().position(|l| l.valid && l.tag == tag) {
            if req.kind.is_write() && self.cfg.write_policy() == WritePolicy::WriteBack {
                slots[way].dirty = true;
            }
            self.policies[set].on_hit(way);
            self.stats
                .record(req.asid, true, false, self.cfg.hit_latency());
            return AccessOutcome::hit(self.cfg.hit_latency());
        }

        // Store miss under no-write-allocate: forward without installing.
        if req.kind.is_write() && self.cfg.write_miss_policy() == WriteMissPolicy::NoWriteAllocate {
            self.stats.record(
                req.asid,
                false,
                false,
                self.cfg.hit_latency() + self.cfg.miss_penalty(),
            );
            return AccessOutcome {
                hit: false,
                latency: self.cfg.hit_latency() + self.cfg.miss_penalty(),
                writeback: false,
                lines_fetched: 0,
                stages: None,
            };
        }

        // Miss path: pick a frame (invalid first, else victim).
        let way = match slots.iter().position(|l| !l.valid) {
            Some(w) => w,
            None => self.policies[set].victim(&mut self.rng),
        };
        let writeback = slots[way].valid && slots[way].dirty;
        slots[way] = LineSlot {
            tag,
            valid: true,
            dirty: req.kind.is_write() && self.cfg.write_policy() == WritePolicy::WriteBack,
            asid: req.asid,
        };
        self.policies[set].on_fill(way);
        self.activity.line_fills += 1;
        if writeback {
            self.activity.writebacks += 1;
        }
        self.stats.record(
            req.asid,
            false,
            writeback,
            self.cfg.hit_latency() + self.cfg.miss_penalty(),
        );
        AccessOutcome::miss(self.cfg.hit_latency() + self.cfg.miss_penalty(), writeback)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn activity(&self) -> Activity {
        self.activity
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.activity = Activity::default();
    }

    fn describe(&self) -> String {
        format!("{} {}", self.cfg, self.policy_kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molcache_trace::{AccessKind, Address};

    fn read(addr: u64) -> Request {
        Request {
            asid: Asid::new(1),
            addr: Address::new(addr),
            kind: AccessKind::Read,
        }
    }

    fn write(addr: u64) -> Request {
        Request {
            asid: Asid::new(1),
            addr: Address::new(addr),
            kind: AccessKind::Write,
        }
    }

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B = 512B.
        SetAssocCache::lru(CacheConfig::new(512, 2, 64).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(read(0)).hit);
        assert!(c.access(read(0)).hit);
        assert!(c.access(read(63)).hit, "same line, different offset");
        assert!(!c.access(read(64)).hit, "next line misses");
    }

    #[test]
    fn conflict_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 (4 sets); assoc 2.
        assert!(!c.access(read(0)).hit);
        assert!(!c.access(read(4 * 64)).hit);
        assert!(!c.access(read(8 * 64)).hit); // evicts line 0 (LRU)
        assert!(!c.access(read(0)).hit, "line 0 was evicted");
        assert!(c.access(read(8 * 64)).hit, "line 8 still resident");
    }

    #[test]
    fn lru_order_respected() {
        let mut c = tiny();
        c.access(read(0));
        c.access(read(4 * 64));
        c.access(read(0)); // 0 is MRU; 4*64 is LRU
        c.access(read(8 * 64)); // evicts 4*64
        assert!(c.access(read(0)).hit);
        assert!(!c.access(read(4 * 64)).hit);
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny();
        assert!(!c.access(write(0)).hit);
        c.access(read(4 * 64));
        let out = c.access(read(8 * 64)); // evicts dirty line 0
        assert!(out.writeback);
        assert_eq!(c.stats().global.writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(read(0));
        c.access(read(4 * 64));
        let out = c.access(read(8 * 64));
        assert!(!out.writeback);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(read(0));
        c.access(write(0)); // hit, marks dirty
        c.access(read(4 * 64));
        let out = c.access(read(8 * 64)); // evicts line 0, now dirty
        assert!(out.writeback);
    }

    #[test]
    fn stats_track_per_app() {
        let mut c = tiny();
        let r1 = Request {
            asid: Asid::new(1),
            addr: Address::new(0),
            kind: AccessKind::Read,
        };
        let r2 = Request {
            asid: Asid::new(2),
            addr: Address::new(1 << 30),
            kind: AccessKind::Read,
        };
        c.access(r1);
        c.access(r1);
        c.access(r2);
        assert_eq!(c.stats().app(Asid::new(1)).hits, 1);
        assert_eq!(c.stats().app(Asid::new(2)).misses, 1);
    }

    #[test]
    fn activity_counts_ways() {
        let mut c = tiny();
        c.access(read(0));
        c.access(read(0));
        let a = c.activity();
        assert_eq!(a.accesses, 2);
        assert_eq!(a.ways_probed, 4); // 2 accesses x 2 ways
        assert_eq!(a.line_fills, 1);
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = tiny();
        c.access(read(0));
        let before = c.stats().clone();
        assert!(c.probe(read(0)));
        assert!(!c.probe(read(64)));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(write(0));
        assert_eq!(c.invalidate(read(0)), Some(true));
        assert_eq!(c.invalidate(read(0)), None);
        assert!(!c.access(read(0)).hit);
    }

    #[test]
    fn reset_stats_clears_counters_not_contents() {
        let mut c = tiny();
        c.access(read(0));
        c.reset_stats();
        assert_eq!(c.stats().global.accesses, 0);
        assert_eq!(c.activity().accesses, 0);
        // Cache contents are preserved.
        assert!(c.access(read(0)).hit);
    }

    #[test]
    fn write_through_never_writes_back() {
        let cfg = CacheConfig::new(512, 2, 64)
            .unwrap()
            .with_write_policy(WritePolicy::WriteThrough);
        let mut c = SetAssocCache::lru(cfg);
        c.access(write(0));
        c.access(write(0)); // hit; still not dirty
        c.access(read(4 * 64));
        let out = c.access(read(8 * 64)); // evicts line 0
        assert!(!out.writeback, "write-through lines are never dirty");
        assert_eq!(c.stats().global.writebacks, 0);
    }

    #[test]
    fn no_write_allocate_skips_install() {
        let cfg = CacheConfig::new(512, 2, 64)
            .unwrap()
            .with_write_miss_policy(WriteMissPolicy::NoWriteAllocate);
        let mut c = SetAssocCache::lru(cfg);
        let out = c.access(write(0));
        assert!(!out.hit);
        assert_eq!(out.lines_fetched, 0, "store miss not installed");
        assert!(!c.access(read(0)).hit, "line was never brought in");
        // Read misses still allocate.
        assert!(c.access(read(0)).hit);
    }

    #[test]
    fn describe_mentions_geometry_and_policy() {
        let c = SetAssocCache::new(CacheConfig::new(1 << 20, 4, 64).unwrap(), Policy::Random);
        assert_eq!(c.describe(), "1MB 4way 64B-line Random");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = SetAssocCache::lru(CacheConfig::direct_mapped(256, 64).unwrap());
        // 4 sets; lines 0 and 4 collide.
        c.access(read(0));
        assert!(!c.access(read(4 * 64)).hit);
        assert!(!c.access(read(0)).hit, "DM cache must have evicted line 0");
    }

    #[test]
    fn full_working_set_fits() {
        let mut c = tiny();
        for i in 0..8u64 {
            c.access(read(i * 64));
        }
        assert_eq!(c.resident_lines(), 8);
        for i in 0..8u64 {
            assert!(c.access(read(i * 64)).hit, "line {i} should be resident");
        }
    }
}
