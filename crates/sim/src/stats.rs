//! Hit/miss statistics, global and per application.

use molcache_trace::Asid;
use std::collections::BTreeMap;

/// Counters for one application (or for the whole cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppStats {
    /// References observed.
    pub accesses: u64,
    /// References that hit.
    pub hits: u64,
    /// References that missed.
    pub misses: u64,
    /// Dirty evictions caused.
    pub writebacks: u64,
}

impl AppStats {
    /// Miss rate (`0.0` when no accesses were observed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate (`0.0` when no accesses were observed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &AppStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
    }

    fn record(&mut self, hit: bool, writeback: bool) {
        self.accesses += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if writeback {
            self.writebacks += 1;
        }
    }
}

/// Cache-wide statistics with per-application breakdown.
///
/// Per-app counters are keyed by [`Asid`] in a `BTreeMap` so iteration
/// order (and therefore all printed reports) is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Whole-cache counters.
    pub global: AppStats,
    /// Per-application counters.
    pub per_app: BTreeMap<Asid, AppStats>,
}

impl CacheStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Records one access outcome for `asid`.
    pub fn record(&mut self, asid: Asid, hit: bool, writeback: bool) {
        self.global.record(hit, writeback);
        self.per_app.entry(asid).or_default().record(hit, writeback);
    }

    /// Returns the stats of one application (zeroes if never seen).
    pub fn app(&self, asid: Asid) -> AppStats {
        self.per_app.get(&asid).copied().unwrap_or_default()
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }

    /// Sums a snapshot taken earlier out of these stats, yielding the
    /// delta accumulated since `earlier`.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        let mut delta = self.clone();
        delta.global.accesses -= earlier.global.accesses;
        delta.global.hits -= earlier.global.hits;
        delta.global.misses -= earlier.global.misses;
        delta.global.writebacks -= earlier.global.writebacks;
        for (asid, prev) in &earlier.per_app {
            if let Some(cur) = delta.per_app.get_mut(asid) {
                cur.accesses -= prev.accesses;
                cur.hits -= prev.hits;
                cur.misses -= prev.misses;
                cur.writebacks -= prev.writebacks;
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_updates_global_and_app() {
        let mut s = CacheStats::new();
        s.record(Asid::new(1), true, false);
        s.record(Asid::new(1), false, true);
        s.record(Asid::new(2), false, false);
        assert_eq!(s.global.accesses, 3);
        assert_eq!(s.global.misses, 2);
        assert_eq!(s.global.writebacks, 1);
        assert_eq!(s.app(Asid::new(1)).hits, 1);
        assert_eq!(s.app(Asid::new(2)).misses, 1);
        assert_eq!(s.app(Asid::new(3)), AppStats::default());
    }

    #[test]
    fn miss_rate_handles_zero() {
        assert_eq!(AppStats::default().miss_rate(), 0.0);
        assert_eq!(AppStats::default().hit_rate(), 0.0);
        let mut s = AppStats::default();
        s.record(false, false);
        s.record(true, false);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn since_computes_delta() {
        let mut s = CacheStats::new();
        s.record(Asid::new(1), false, false);
        let snapshot = s.clone();
        s.record(Asid::new(1), true, false);
        s.record(Asid::new(1), true, false);
        let delta = s.since(&snapshot);
        assert_eq!(delta.global.accesses, 2);
        assert_eq!(delta.app(Asid::new(1)).hits, 2);
        assert_eq!(delta.app(Asid::new(1)).misses, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AppStats {
            accesses: 1,
            hits: 1,
            misses: 0,
            writebacks: 0,
        };
        let b = AppStats {
            accesses: 3,
            hits: 1,
            misses: 2,
            writebacks: 1,
        };
        a.merge(&b);
        assert_eq!(a.accesses, 4);
        assert_eq!(a.misses, 2);
        assert_eq!(a.writebacks, 1);
    }

    #[test]
    fn reset_clears() {
        let mut s = CacheStats::new();
        s.record(Asid::new(1), true, false);
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
