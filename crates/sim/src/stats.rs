//! Hit/miss statistics, global and per application.

use molcache_trace::Asid;
use std::collections::BTreeMap;

/// Counters for one application (or for the whole cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppStats {
    /// References observed.
    pub accesses: u64,
    /// References that hit.
    pub hits: u64,
    /// References that missed.
    pub misses: u64,
    /// Dirty evictions caused.
    pub writebacks: u64,
    /// Latency accumulated across all references (cycles).
    pub total_latency: u64,
}

impl AppStats {
    /// Miss rate (`0.0` when no accesses were observed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate (`0.0` when no accesses were observed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Average latency per access in cycles (`0.0` when empty).
    pub fn avg_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &AppStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.total_latency += other.total_latency;
    }

    fn record(&mut self, hit: bool, writeback: bool, latency: u32) {
        self.accesses += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if writeback {
            self.writebacks += 1;
        }
        self.total_latency += u64::from(latency);
    }
}

/// Cache-wide statistics with per-application breakdown.
///
/// Per-app counters are keyed by [`Asid`] in a `BTreeMap` so iteration
/// order (and therefore all printed reports) is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Whole-cache counters.
    pub global: AppStats,
    /// Per-application counters.
    pub per_app: BTreeMap<Asid, AppStats>,
}

impl CacheStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Records one access outcome for `asid` with its service latency.
    pub fn record(&mut self, asid: Asid, hit: bool, writeback: bool, latency: u32) {
        self.global.record(hit, writeback, latency);
        self.per_app
            .entry(asid)
            .or_default()
            .record(hit, writeback, latency);
    }

    /// Returns the stats of one application (zeroes if never seen).
    pub fn app(&self, asid: Asid) -> AppStats {
        self.per_app.get(&asid).copied().unwrap_or_default()
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }

    /// Sums a snapshot taken earlier out of these stats, yielding the
    /// delta accumulated since `earlier`.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        let mut delta = self.clone();
        delta.global.accesses -= earlier.global.accesses;
        delta.global.hits -= earlier.global.hits;
        delta.global.misses -= earlier.global.misses;
        delta.global.writebacks -= earlier.global.writebacks;
        delta.global.total_latency -= earlier.global.total_latency;
        for (asid, prev) in &earlier.per_app {
            if let Some(cur) = delta.per_app.get_mut(asid) {
                cur.accesses -= prev.accesses;
                cur.hits -= prev.hits;
                cur.misses -= prev.misses;
                cur.writebacks -= prev.writebacks;
                cur.total_latency -= prev.total_latency;
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_updates_global_and_app() {
        let mut s = CacheStats::new();
        s.record(Asid::new(1), true, false, 10);
        s.record(Asid::new(1), false, true, 110);
        s.record(Asid::new(2), false, false, 110);
        assert_eq!(s.global.accesses, 3);
        assert_eq!(s.global.misses, 2);
        assert_eq!(s.global.writebacks, 1);
        assert_eq!(s.global.total_latency, 230);
        assert_eq!(s.app(Asid::new(1)).hits, 1);
        assert_eq!(s.app(Asid::new(1)).total_latency, 120);
        assert_eq!(s.app(Asid::new(2)).misses, 1);
        assert_eq!(s.app(Asid::new(3)), AppStats::default());
    }

    #[test]
    fn miss_rate_handles_zero() {
        assert_eq!(AppStats::default().miss_rate(), 0.0);
        assert_eq!(AppStats::default().hit_rate(), 0.0);
        assert_eq!(AppStats::default().avg_latency(), 0.0);
        let mut s = AppStats::default();
        s.record(false, false, 100);
        s.record(true, false, 10);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.avg_latency() - 55.0).abs() < 1e-12);
    }

    #[test]
    fn since_computes_delta() {
        let mut s = CacheStats::new();
        s.record(Asid::new(1), false, false, 100);
        let snapshot = s.clone();
        s.record(Asid::new(1), true, false, 10);
        s.record(Asid::new(1), true, false, 10);
        let delta = s.since(&snapshot);
        assert_eq!(delta.global.accesses, 2);
        assert_eq!(delta.global.total_latency, 20);
        assert_eq!(delta.app(Asid::new(1)).hits, 2);
        assert_eq!(delta.app(Asid::new(1)).misses, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AppStats {
            accesses: 1,
            hits: 1,
            misses: 0,
            writebacks: 0,
            total_latency: 10,
        };
        let b = AppStats {
            accesses: 3,
            hits: 1,
            misses: 2,
            writebacks: 1,
            total_latency: 230,
        };
        a.merge(&b);
        assert_eq!(a.accesses, 4);
        assert_eq!(a.misses, 2);
        assert_eq!(a.writebacks, 1);
        assert_eq!(a.total_latency, 240);
    }

    #[test]
    fn reset_clears() {
        let mut s = CacheStats::new();
        s.record(Asid::new(1), true, false, 10);
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
