//! Integration tests of the related-work partitioning baselines: the
//! paper's §2 claims about Suh et al.'s schemes, made runnable.

use molcache_sim::cmp::run_shared;
use molcache_sim::partition::{ColumnCache, ModifiedLruCache};
use molcache_sim::replacement::Policy;
use molcache_sim::{CacheConfig, CacheModel, SetAssocCache};
use molcache_trace::gen::BoxedSource;
use molcache_trace::presets::Benchmark;
use molcache_trace::Asid;

const REFS: u64 = 400_000;

fn victim_and_polluter() -> Vec<BoxedSource> {
    vec![
        Benchmark::Twolf.source(Asid::new(1), 17), // small hot set
        Benchmark::Crc.source(Asid::new(2), 17),   // pure stream
    ]
}

fn cfg() -> CacheConfig {
    CacheConfig::new(512 << 10, 8, 64).unwrap()
}

fn shared_lru_victim_miss_rate() -> f64 {
    let mut cache = SetAssocCache::new(cfg(), Policy::Lru);
    run_shared(victim_and_polluter(), &mut cache, REFS)
        .unwrap()
        .app_miss_rate(Asid::new(1))
}

#[test]
fn column_caching_contains_stream_pollution() {
    // Give the polluter two ways, the victim six.
    let mut cache = ColumnCache::new(cfg());
    cache
        .assign_columns(Asid::new(1), vec![0, 1, 2, 3, 4, 5])
        .unwrap();
    cache.assign_columns(Asid::new(2), vec![6, 7]).unwrap();
    let partitioned = run_shared(victim_and_polluter(), &mut cache, REFS)
        .unwrap()
        .app_miss_rate(Asid::new(1));
    let shared = shared_lru_victim_miss_rate();
    assert!(
        partitioned <= shared + 0.01,
        "column caching must not be worse than shared LRU for the victim: \
         {partitioned:.4} vs {shared:.4}"
    );
}

#[test]
fn modified_lru_quota_contains_stream_pollution() {
    let mut cache = ModifiedLruCache::new(cfg());
    // The stream gets a 1024-block quota (one eighth of the cache).
    cache.set_quota(Asid::new(2), 1024);
    let summary = run_shared(victim_and_polluter(), &mut cache, REFS).unwrap();
    let partitioned = summary.app_miss_rate(Asid::new(1));
    let shared = shared_lru_victim_miss_rate();
    assert!(
        partitioned <= shared + 0.01,
        "modified LRU must not be worse than shared LRU for the victim: \
         {partitioned:.4} vs {shared:.4}"
    );
    // The quota is strict: at the cap, fills that cannot replace an own
    // block are bypassed.
    assert!(
        cache.owned_blocks(Asid::new(2)) <= 1024,
        "quota overshoot: {}",
        cache.owned_blocks(Asid::new(2))
    );
}

#[test]
fn partitioning_costs_the_polluter_nothing() {
    // CRC misses everything regardless; restricting it is free QoS.
    let mut shared = SetAssocCache::new(cfg(), Policy::Lru);
    let shared_crc = run_shared(victim_and_polluter(), &mut shared, REFS)
        .unwrap()
        .app_miss_rate(Asid::new(2));

    let mut column = ColumnCache::new(cfg());
    column.assign_columns(Asid::new(2), vec![7]).unwrap();
    let partitioned_crc = run_shared(victim_and_polluter(), &mut column, REFS)
        .unwrap()
        .app_miss_rate(Asid::new(2));
    // Confining CRC to one way costs only its tiny hot-state component
    // a few points; the stream itself is capacity-insensitive.
    assert!(
        (partitioned_crc - shared_crc).abs() < 0.06,
        "stream miss rate is capacity-insensitive: {partitioned_crc:.3} vs {shared_crc:.3}"
    );
}

#[test]
fn baselines_agree_on_single_app() {
    // With one application and no restrictions, all three traditional
    // models converge to similar miss rates on the same stream.
    let run_one = |cache: &mut dyn CacheModel| {
        run_shared(
            vec![Benchmark::Gzip.source(Asid::new(1), 17)],
            cache,
            REFS / 2,
        )
        .unwrap()
        .global
        .miss_rate()
    };
    let mut lru = SetAssocCache::new(cfg(), Policy::Lru);
    let mut column = ColumnCache::new(cfg());
    let mut mlru = ModifiedLruCache::new(cfg());
    let a = run_one(&mut lru);
    let b = run_one(&mut column);
    let c = run_one(&mut mlru);
    for (label, v) in [("column", b), ("mlru", c)] {
        assert!(
            (v - a).abs() < 0.05,
            "{label} diverges from LRU on one app: {v:.3} vs {a:.3}"
        );
    }
}
