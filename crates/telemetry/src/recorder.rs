//! The retaining sink: accumulates epoch streams, histograms and the
//! resize log, then exports them as JSON or rendered reports.

use crate::event::{EpochActivity, EpochSample, Event, ResizeRecord};
use crate::hist::LatencyHistogram;
use crate::sink::Sink;
use molcache_metrics::chart::{bar_chart, sparkline};
use molcache_metrics::json::{JsonError, Value};
use molcache_metrics::table::{fmt_f64, Table};
use molcache_power::accounting::EnergyMeter;
use molcache_trace::Asid;
use std::collections::BTreeMap;

/// A [`Sink`] that keeps everything it is fed.
///
/// One recorder corresponds to one run (one cache, one trace window). The
/// bench `Engine` creates one per experiment point and merges the
/// exported documents in item order, so a multi-run export is identical
/// for any worker count.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    label: String,
    partitions: Vec<EpochSample>,
    epochs: Vec<EpochActivity>,
    resizes: Vec<ResizeRecord>,
    global_latency: LatencyHistogram,
    per_app_latency: BTreeMap<Asid, LatencyHistogram>,
    energy: Option<EnergyMeter>,
}

impl Recorder {
    /// An empty recorder labeled `label` (shown in reports and exports).
    pub fn new(label: impl Into<String>) -> Self {
        Recorder {
            label: label.into(),
            ..Recorder::default()
        }
    }

    /// The run label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Relabels the run.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = label.into();
    }

    /// Prices each epoch's activity with `meter` (adds `energy_nj` to the
    /// exported epoch records).
    pub fn set_energy_meter(&mut self, meter: EnergyMeter) {
        self.energy = Some(meter);
    }

    /// Per-partition epoch samples in publish order (epoch-major, ASID
    /// order within an epoch).
    pub fn partitions(&self) -> &[EpochSample] {
        &self.partitions
    }

    /// Cache-wide epoch activity records.
    pub fn epochs(&self) -> &[EpochActivity] {
        &self.epochs
    }

    /// The resize-event log.
    pub fn resizes(&self) -> &[ResizeRecord] {
        &self.resizes
    }

    /// Latency histogram over all accesses.
    pub fn global_latency(&self) -> &LatencyHistogram {
        &self.global_latency
    }

    /// Per-application latency histograms.
    pub fn per_app_latency(&self) -> &BTreeMap<Asid, LatencyHistogram> {
        &self.per_app_latency
    }

    /// Dynamic energy of one epoch in nanojoules, when a meter is set.
    pub fn epoch_energy_nj(&self, epoch: &EpochActivity) -> Option<f64> {
        self.energy
            .map(|meter| meter.energy_j(&epoch.as_activity()) * 1e9)
    }

    /// Samples of one partition, in epoch order.
    pub fn partition_series(&self, asid: Asid) -> Vec<&EpochSample> {
        self.partitions.iter().filter(|s| s.asid == asid).collect()
    }

    /// ASIDs that published at least one sample.
    pub fn asids(&self) -> Vec<Asid> {
        let mut out: Vec<Asid> = Vec::new();
        for s in &self.partitions {
            if !out.contains(&s.asid) {
                out.push(s.asid);
            }
        }
        out.sort();
        out
    }

    /// The run as a JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut partitions = Vec::new();
        for asid in self.asids() {
            let samples: Vec<Value> = self
                .partition_series(asid)
                .into_iter()
                .map(|s| {
                    Value::Object(vec![
                        ("epoch".into(), Value::Number(s.epoch as f64)),
                        ("accesses".into(), Value::Number(s.accesses as f64)),
                        ("misses".into(), Value::Number(s.misses as f64)),
                        ("miss_rate".into(), Value::Number(s.miss_rate())),
                        ("molecules".into(), Value::Number(s.molecules as f64)),
                        ("rows".into(), Value::Number(s.rows as f64)),
                        ("occupancy".into(), Value::Number(s.occupancy)),
                        ("goal".into(), Value::Number(s.goal)),
                    ])
                })
                .collect();
            partitions.push(Value::Object(vec![
                ("asid".into(), Value::Number(f64::from(asid.raw()))),
                ("samples".into(), Value::Array(samples)),
            ]));
        }

        let epochs: Vec<Value> = self
            .epochs
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("epoch".into(), Value::Number(e.epoch as f64)),
                    ("accesses".into(), Value::Number(e.accesses as f64)),
                    ("ways_probed".into(), Value::Number(e.ways_probed as f64)),
                    ("line_fills".into(), Value::Number(e.line_fills as f64)),
                    ("writebacks".into(), Value::Number(e.writebacks as f64)),
                    (
                        "asid_compares".into(),
                        Value::Number(e.asid_compares as f64),
                    ),
                    (
                        "ulmo_searches".into(),
                        Value::Number(e.ulmo_searches as f64),
                    ),
                    (
                        "free_molecules".into(),
                        Value::Number(e.free_molecules as f64),
                    ),
                ];
                if let Some(nj) = self.epoch_energy_nj(e) {
                    fields.push(("energy_nj".into(), Value::Number(nj)));
                }
                let stage_energy = self
                    .energy
                    .map(|meter| meter.stage_energy_nj(&e.as_activity()));
                let stages: Vec<Value> = e
                    .stages
                    .iter()
                    .map(|(stage, totals)| {
                        let mut f = vec![
                            ("stage".into(), Value::String(stage.name().into())),
                            ("cycles".into(), Value::Number(totals.cycles as f64)),
                            (
                                "asid_compares".into(),
                                Value::Number(totals.asid_compares as f64),
                            ),
                            ("tag_probes".into(), Value::Number(totals.tag_probes as f64)),
                            (
                                "frames_touched".into(),
                                Value::Number(totals.frames_touched as f64),
                            ),
                        ];
                        if let Some(se) = &stage_energy {
                            f.push(("energy_nj".into(), Value::Number(se.stage(stage))));
                        }
                        Value::Object(f)
                    })
                    .collect();
                fields.push(("stages".into(), Value::Array(stages)));
                Value::Object(fields)
            })
            .collect();

        let resizes: Vec<Value> = self
            .resizes
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("at_access".into(), Value::Number(r.at_access as f64)),
                    ("trigger".into(), Value::String(r.trigger.clone())),
                    ("asid".into(), Value::Number(f64::from(r.asid.raw()))),
                    ("kind".into(), Value::String(r.kind.name().into())),
                    ("requested".into(), Value::Number(r.requested as f64)),
                    ("applied".into(), Value::Number(r.applied as f64)),
                    ("before".into(), Value::Number(r.before as f64)),
                    ("after".into(), Value::Number(r.after as f64)),
                    ("window_miss_rate".into(), Value::Number(r.window_miss_rate)),
                    ("goal".into(), Value::Number(r.goal)),
                ])
            })
            .collect();

        let per_app: Vec<Value> = self
            .per_app_latency
            .iter()
            .map(|(asid, hist)| {
                let mut fields = vec![("asid".into(), Value::Number(f64::from(asid.raw())))];
                fields.extend(histogram_fields(hist));
                Value::Object(fields)
            })
            .collect();

        Value::Object(vec![
            ("label".into(), Value::String(self.label.clone())),
            ("partitions".into(), Value::Array(partitions)),
            ("epochs".into(), Value::Array(epochs)),
            ("resize_events".into(), Value::Array(resizes)),
            (
                "latency".into(),
                Value::Object(vec![
                    (
                        "global".into(),
                        Value::Object(histogram_fields(&self.global_latency)),
                    ),
                    ("per_app".into(), Value::Array(per_app)),
                ]),
            ),
        ])
    }

    /// The run as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates [`JsonError`] from the encoder (cannot occur for the
    /// finite numbers a recorder holds).
    pub fn to_json(&self) -> Result<String, JsonError> {
        self.to_value().to_json()
    }

    /// Renders the partition timeline, resize log and latency summary as
    /// terminal tables and sparklines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.label.is_empty() {
            out.push_str(&format!("== {} ==\n", self.label));
        }

        let asids = self.asids();
        if !asids.is_empty() {
            let mut t = Table::new(vec![
                "app",
                "molecules",
                "size timeline",
                "miss rate",
                "occupancy",
            ]);
            for asid in &asids {
                let series = self.partition_series(*asid);
                let sizes: Vec<f64> = series.iter().map(|s| s.molecules as f64).collect();
                let last = series.last().expect("non-empty series");
                t.row(vec![
                    format!("{}", asid.raw()),
                    format!("{}", last.molecules),
                    sparkline(&sizes),
                    fmt_f64(last.miss_rate(), 3),
                    fmt_f64(last.occupancy, 3),
                ]);
            }
            out.push_str("Partition timeline (per epoch)\n");
            out.push_str(&t.render());
            out.push('\n');
        }

        if self.resizes.is_empty() {
            out.push_str("Resize events: none\n");
        } else {
            let mut t = Table::new(vec![
                "access",
                "policy",
                "trigger",
                "app",
                "kind",
                "req",
                "applied",
                "size",
                "window mr",
                "goal",
            ]);
            for r in &self.resizes {
                t.row(vec![
                    format!("{}", r.at_access),
                    r.policy.clone(),
                    r.trigger.clone(),
                    format!("{}", r.asid.raw()),
                    r.kind.name().into(),
                    format!("{}", r.requested),
                    format!("{}", r.applied),
                    format!("{}->{}", r.before, r.after),
                    fmt_f64(r.window_miss_rate, 3),
                    fmt_f64(r.goal, 2),
                ]);
            }
            out.push_str(&format!("Resize events ({})\n", self.resizes.len()));
            out.push_str(&t.render());
            out.push('\n');
        }

        if self.global_latency.count() > 0 {
            let h = &self.global_latency;
            out.push_str(&format!(
                "Latency: mean {:.1} cycles, p50 <= {}, p99 <= {}, max {} ({} accesses)\n",
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max(),
                h.count(),
            ));
            let rows: Vec<(String, f64)> = h
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(b, &c)| (format!("<={}", LatencyHistogram::bucket_bound(b)), c as f64))
                .collect();
            out.push_str(&bar_chart("Latency histogram (log2 buckets)", &rows, 40));
        }
        out
    }
}

fn histogram_fields(hist: &LatencyHistogram) -> Vec<(String, Value)> {
    let buckets: Vec<Value> = hist
        .buckets()
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(bucket, &count)| {
            Value::Object(vec![
                (
                    "le".into(),
                    Value::Number(f64::from(LatencyHistogram::bucket_bound(bucket))),
                ),
                ("count".into(), Value::Number(count as f64)),
            ])
        })
        .collect();
    vec![
        ("count".into(), Value::Number(hist.count() as f64)),
        ("mean".into(), Value::Number(hist.mean())),
        ("p50".into(), Value::Number(f64::from(hist.quantile(0.5)))),
        ("p90".into(), Value::Number(f64::from(hist.quantile(0.9)))),
        ("p99".into(), Value::Number(f64::from(hist.quantile(0.99)))),
        ("max".into(), Value::Number(f64::from(hist.max()))),
        ("buckets".into(), Value::Array(buckets)),
    ]
}

impl Sink for Recorder {
    fn record(&mut self, event: &Event<'_>) {
        match event {
            Event::Access {
                asid,
                hit: _,
                latency,
            } => {
                self.global_latency.record(*latency);
                self.per_app_latency
                    .entry(*asid)
                    .or_default()
                    .record(*latency);
            }
            Event::Partition(sample) => self.partitions.push(**sample),
            Event::Epoch(activity) => self.epochs.push(**activity),
            Event::Resize(record) => self.resizes.push((*record).clone()),
        }
    }
}

/// Bundles several runs into one JSON document, in slice order — callers
/// that fan runs out across workers keep the export deterministic by
/// passing recorders in item order.
pub fn runs_to_value(runs: &[Recorder]) -> Value {
    Value::Object(vec![
        (
            "schema".into(),
            Value::String("molcache-telemetry-v1".into()),
        ),
        (
            "runs".into(),
            Value::Array(runs.iter().map(Recorder::to_value).collect()),
        ),
    ])
}

/// [`runs_to_value`] rendered as pretty JSON.
///
/// # Errors
///
/// Propagates [`JsonError`] from the encoder.
pub fn runs_to_json(runs: &[Recorder]) -> Result<String, JsonError> {
    runs_to_value(runs).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ResizeKind;
    use molcache_metrics::json::parse;

    fn sample_recorder() -> Recorder {
        let mut rec = Recorder::new("test-run");
        rec.record(&Event::Access {
            asid: Asid::new(1),
            hit: true,
            latency: 12,
        });
        rec.record(&Event::Access {
            asid: Asid::new(2),
            hit: false,
            latency: 112,
        });
        let sample = EpochSample {
            epoch: 0,
            asid: Asid::new(1),
            accesses: 2,
            misses: 1,
            molecules: 4,
            rows: 4,
            occupancy: 0.25,
            goal: 0.25,
        };
        rec.record(&Event::Partition(&sample));
        let epoch = EpochActivity {
            epoch: 0,
            accesses: 2,
            ways_probed: 8,
            line_fills: 1,
            writebacks: 0,
            asid_compares: 8,
            ulmo_searches: 1,
            free_molecules: 10,
            memo_hits: 0,
            stages: {
                let mut s = molcache_sim::StageActivity::default();
                s.asid_gate.asid_compares = 8;
                s.asid_gate.cycles = 2;
                s.home_lookup.tag_probes = 8;
                s.home_lookup.cycles = 8;
                s.ulmo_search.cycles = 8;
                s.fill.frames_touched = 1;
                s.fill.cycles = 200;
                s
            },
        };
        rec.record(&Event::Epoch(&epoch));
        let resize = ResizeRecord {
            at_access: 25_000,
            trigger: "per-app-adaptive".into(),
            asid: Asid::new(1),
            kind: ResizeKind::Grow,
            requested: 4,
            applied: 4,
            before: 4,
            after: 8,
            window_miss_rate: 0.5,
            goal: 0.25,
            policy: "paper-algorithm1".into(),
            inputs: crate::event::ResizeDecisionInputs {
                window_accesses: 100,
                window_miss_rate: 0.5,
                last_miss_rate: 1.0,
                goal: 0.25,
                current: 4,
                last_allocation: 4,
                max_allocation: 16,
                free_molecules: 10,
            },
        };
        rec.record(&Event::Resize(&resize));
        rec
    }

    #[test]
    fn recorder_retains_all_streams() {
        let rec = sample_recorder();
        assert_eq!(rec.partitions().len(), 1);
        assert_eq!(rec.epochs().len(), 1);
        assert_eq!(rec.resizes().len(), 1);
        assert_eq!(rec.global_latency().count(), 2);
        assert_eq!(rec.per_app_latency().len(), 2);
        assert_eq!(rec.asids(), vec![Asid::new(1)]);
        assert_eq!(rec.partition_series(Asid::new(1)).len(), 1);
    }

    #[test]
    fn export_is_valid_json_with_expected_fields() {
        let rec = sample_recorder();
        let doc = parse(&rec.to_json().unwrap()).unwrap();
        assert_eq!(doc.get("label").unwrap().as_str(), Some("test-run"));
        let parts = doc.get("partitions").unwrap().as_array().unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].get("asid").unwrap().as_f64(), Some(1.0));
        let samples = parts[0].get("samples").unwrap().as_array().unwrap();
        assert_eq!(samples[0].get("miss_rate").unwrap().as_f64(), Some(0.5));
        let resizes = doc.get("resize_events").unwrap().as_array().unwrap();
        assert_eq!(resizes[0].get("kind").unwrap().as_str(), Some("grow"));
        assert_eq!(resizes[0].get("after").unwrap().as_f64(), Some(8.0));
        let latency = doc.get("latency").unwrap();
        let global = latency.get("global").unwrap();
        assert_eq!(global.get("count").unwrap().as_f64(), Some(2.0));
        // No meter set: epochs carry no energy field.
        let epochs = doc.get("epochs").unwrap().as_array().unwrap();
        assert!(epochs[0].get("energy_nj").is_none());
    }

    #[test]
    fn energy_meter_prices_epochs() {
        let mut rec = sample_recorder();
        rec.set_energy_meter(EnergyMeter {
            probe_nj: 1.0,
            fill_nj: 2.0,
            writeback_nj: 3.0,
            asid_compare_nj: 0.5,
            ulmo_search_nj: 4.0,
        });
        // 8 probes + 1 fill + 8 compares*0.5 + 1 ulmo*4 = 18 nJ.
        let nj = rec.epoch_energy_nj(&rec.epochs()[0]).unwrap();
        assert!((nj - 18.0).abs() < 1e-9, "{nj}");
        let doc = parse(&rec.to_json().unwrap()).unwrap();
        let epochs = doc.get("epochs").unwrap().as_array().unwrap();
        let exported = epochs[0].get("energy_nj").unwrap().as_f64().unwrap();
        assert!((exported - 18.0).abs() < 1e-9);
    }

    #[test]
    fn export_carries_per_stage_epoch_series() {
        let mut rec = sample_recorder();
        rec.set_energy_meter(EnergyMeter {
            probe_nj: 1.0,
            fill_nj: 2.0,
            writeback_nj: 3.0,
            asid_compare_nj: 0.5,
            ulmo_search_nj: 4.0,
        });
        let doc = parse(&rec.to_json().unwrap()).unwrap();
        let epochs = doc.get("epochs").unwrap().as_array().unwrap();
        let stages = epochs[0].get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages.len(), 5, "one record per pipeline stage");
        assert_eq!(stages[0].get("stage").unwrap().as_str(), Some("asid-gate"));
        assert_eq!(stages[0].get("asid_compares").unwrap().as_f64(), Some(8.0));
        assert_eq!(
            stages[1].get("stage").unwrap().as_str(),
            Some("home-lookup")
        );
        assert_eq!(stages[1].get("tag_probes").unwrap().as_f64(), Some(8.0));
        assert_eq!(stages[4].get("stage").unwrap().as_str(), Some("fill"));
        assert_eq!(stages[4].get("frames_touched").unwrap().as_f64(), Some(1.0));
        // With a meter set, each stage also carries its energy, and the
        // stage energies sum to the epoch's total.
        let total: f64 = stages
            .iter()
            .map(|s| s.get("energy_nj").unwrap().as_f64().unwrap())
            .sum();
        let epoch_nj = epochs[0].get("energy_nj").unwrap().as_f64().unwrap();
        assert!((total - epoch_nj).abs() < 1e-9, "{total} vs {epoch_nj}");
    }

    #[test]
    fn render_shows_timeline_and_resizes() {
        let rec = sample_recorder();
        let text = rec.render();
        assert!(text.contains("test-run"));
        assert!(text.contains("Partition timeline"));
        assert!(text.contains("Resize events (1)"));
        assert!(text.contains("grow"));
        assert!(text.contains("4->8"));
        assert!(text.contains("Latency"));
    }

    #[test]
    fn empty_recorder_renders_and_exports() {
        let rec = Recorder::new("");
        assert!(rec.render().contains("Resize events: none"));
        let doc = parse(&rec.to_json().unwrap()).unwrap();
        assert_eq!(doc.get("partitions").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn multi_run_document_keeps_order() {
        let runs = vec![Recorder::new("a"), Recorder::new("b")];
        let doc = parse(&runs_to_json(&runs).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("molcache-telemetry-v1")
        );
        let arr = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(arr[0].get("label").unwrap().as_str(), Some("a"));
        assert_eq!(arr[1].get("label").unwrap().as_str(), Some("b"));
    }
}
