//! Per-shard contention counters for the multi-tenant serving layer.
//!
//! `molcache-serve` guards each cluster shard with a mutex; these are
//! the plain-data records its atomic counters collapse into when a
//! replay finishes, kept here so renderers (`molstat --serve`) can
//! consume them without depending on the serving crate's concurrency
//! machinery. All fields are totals over one replay.

/// Contention observed on one cluster shard's lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardContention {
    /// Shard index.
    pub shard: usize,
    /// Lock acquisitions (one per access batch / lifecycle call).
    pub acquisitions: u64,
    /// Acquisitions that found the lock held and had to wait.
    pub contended: u64,
    /// Nanoseconds spent waiting on contended acquisitions.
    pub lock_wait_ns: u64,
    /// Largest number of threads simultaneously waiting plus holding —
    /// the shard's worst-case queue depth.
    pub max_queue_depth: u64,
    /// Accesses serviced through this shard.
    pub accesses: u64,
    /// Hits among them.
    pub hits: u64,
}

impl ShardContention {
    /// Fraction of acquisitions that had to wait (0.0 when idle).
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }

    /// Hit rate of the traffic this shard serviced (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Cross-shard load imbalance: the busiest shard's access count over
/// the mean access count, so 1.0 is perfectly balanced and `N` means
/// one shard of `N` carried everything. Returns 0.0 when no shard saw
/// traffic (an idle service is not "balanced", it is unmeasured).
pub fn imbalance(shards: &[ShardContention]) -> f64 {
    if shards.is_empty() {
        return 0.0;
    }
    let total: u64 = shards.iter().map(|s| s.accesses).sum();
    if total == 0 {
        return 0.0;
    }
    let mean = total as f64 / shards.len() as f64;
    let max = shards.iter().map(|s| s.accesses).max().unwrap_or(0);
    max as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(i: usize, accesses: u64, hits: u64) -> ShardContention {
        ShardContention {
            shard: i,
            accesses,
            hits,
            ..ShardContention::default()
        }
    }

    #[test]
    fn rates_handle_idle_shards() {
        let idle = ShardContention::default();
        assert_eq!(idle.contention_rate(), 0.0);
        assert_eq!(idle.hit_rate(), 0.0);
        let busy = ShardContention {
            acquisitions: 10,
            contended: 4,
            accesses: 100,
            hits: 25,
            ..ShardContention::default()
        };
        assert!((busy.contention_rate() - 0.4).abs() < 1e-12);
        assert!((busy.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_even_load_is_one() {
        let shards = [shard(0, 100, 10), shard(1, 100, 20)];
        assert!((imbalance(&shards) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_skewed_load_scales_with_shards() {
        // One of four shards carries all traffic: imbalance 4.0.
        let shards = [
            shard(0, 400, 0),
            shard(1, 0, 0),
            shard(2, 0, 0),
            shard(3, 0, 0),
        ];
        assert!((imbalance(&shards) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_idle_or_empty_is_zero() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[shard(0, 0, 0), shard(1, 0, 0)]), 0.0);
    }
}
