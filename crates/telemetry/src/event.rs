//! Telemetry event types published by the cache and simulation layers.

use molcache_trace::Asid;

/// One partition's state over one epoch — the per-ASID row of the
/// time-series the paper's Algorithm 1 acts on but never exposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSample {
    /// Epoch index (epoch 0 covers the first `epoch_length` accesses
    /// after the last statistics reset).
    pub epoch: u64,
    /// Owning application.
    pub asid: Asid,
    /// References this partition serviced during the epoch.
    pub accesses: u64,
    /// References that missed during the epoch.
    pub misses: u64,
    /// Molecules allocated to the partition at epoch close.
    pub molecules: usize,
    /// Replacement rows the partition's view is organized into.
    pub rows: usize,
    /// Fraction of the partition's line frames holding valid lines at
    /// epoch close (0.0 for an empty partition).
    pub occupancy: f64,
    /// The partition's miss-rate goal.
    pub goal: f64,
}

impl EpochSample {
    /// Miss rate within the epoch (0.0 when the partition was idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Cache-wide activity accumulated over one epoch — the deltas of the
/// [`Activity`](molcache_sim::Activity) counters the power model prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochActivity {
    /// Epoch index.
    pub epoch: u64,
    /// References serviced.
    pub accesses: u64,
    /// Ways/molecules probed.
    pub ways_probed: u64,
    /// Lines brought in.
    pub line_fills: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// ASID comparisons performed.
    pub asid_compares: u64,
    /// Ulmo remote-tile searches launched.
    pub ulmo_searches: u64,
    /// Unallocated molecules at epoch close.
    pub free_molecules: usize,
    /// References served by the memoization front-end (always 0 when the
    /// `memo-front` feature is off or disabled). Diagnostic only: it is
    /// deliberately **excluded** from the canonical JSON export so that
    /// telemetry documents stay byte-identical with memoization on or
    /// off. Surfaced by `molstat --memo` and molbench instead.
    pub memo_hits: u64,
    /// Per-pipeline-stage deltas of the counters above (all-zero for
    /// caches without a staged pipeline).
    pub stages: molcache_sim::StageActivity,
}

impl EpochActivity {
    /// The activity counters as a [`molcache_sim::Activity`], for pricing
    /// by `molcache-power`'s `EnergyMeter`.
    pub fn as_activity(&self) -> molcache_sim::Activity {
        molcache_sim::Activity {
            accesses: self.accesses,
            ways_probed: self.ways_probed,
            line_fills: self.line_fills,
            writebacks: self.writebacks,
            asid_compares: self.asid_compares,
            ulmo_searches: self.ulmo_searches,
            stages: self.stages,
        }
    }
}

/// Direction of an applied resize decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeKind {
    /// Algorithm 1 decided to grow the partition.
    Grow,
    /// Algorithm 1 decided to shrink the partition.
    Shrink,
}

impl ResizeKind {
    /// Lowercase name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ResizeKind::Grow => "grow",
            ResizeKind::Shrink => "shrink",
        }
    }
}

/// The decision-input snapshot a resize policy saw when it made the
/// call, carried on every [`ResizeRecord`]. Diagnostic only: like
/// [`EpochActivity::memo_hits`], it is deliberately **excluded** from
/// the canonical JSON export so telemetry documents stay byte-identical
/// across the policy-trait refactor; `molstat` renders it instead.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResizeDecisionInputs {
    /// Accesses the partition served in the closing window.
    pub window_accesses: u64,
    /// Miss rate over the closing window.
    pub window_miss_rate: f64,
    /// Miss rate of the previous window (1.0 before the first window).
    pub last_miss_rate: f64,
    /// The goal the policy judged the partition against.
    pub goal: f64,
    /// Allocation in molecules at decision time.
    pub current: usize,
    /// Molecules granted or withdrawn by the previous resize.
    pub last_allocation: usize,
    /// Per-resize grant cap in force.
    pub max_allocation: usize,
    /// Unallocated molecules across the cache at decision time.
    pub free_molecules: usize,
}

/// One entry of the structured resize-event log: a non-Hold decision of
/// the installed resize policy, with what was asked for and what
/// actually happened.
#[derive(Debug, Clone, PartialEq)]
pub struct ResizeRecord {
    /// Global access count when the resize round ran.
    pub at_access: u64,
    /// Name of the trigger that fired the round (e.g. `per-app-adaptive`).
    pub trigger: String,
    /// Partition that was resized.
    pub asid: Asid,
    /// Grow or shrink.
    pub kind: ResizeKind,
    /// Molecules the decision asked to add/remove.
    pub requested: usize,
    /// Molecules actually added/removed (allocation can fall short of the
    /// request when tiles are full; `0` records a failed grow).
    pub applied: usize,
    /// Partition size before the decision (molecules).
    pub before: usize,
    /// Partition size after the decision (molecules).
    pub after: usize,
    /// Miss rate of the window that drove the decision.
    pub window_miss_rate: f64,
    /// The partition's miss-rate goal.
    pub goal: f64,
    /// Stable name of the policy that fired the decision (e.g.
    /// `paper-algorithm1`). Diagnostic: excluded from the canonical JSON
    /// export (see [`ResizeDecisionInputs`]).
    pub policy: String,
    /// The full input snapshot the policy decided from. Diagnostic:
    /// excluded from the canonical JSON export.
    pub inputs: ResizeDecisionInputs,
}

/// An event on the telemetry bus.
///
/// Borrowed payloads keep publication allocation-free; sinks that retain
/// events copy what they need.
#[derive(Debug, Clone, Copy)]
pub enum Event<'a> {
    /// One serviced reference (feeds the latency histograms).
    Access {
        /// Requesting application.
        asid: Asid,
        /// Whether the reference hit.
        hit: bool,
        /// Service latency in cycles.
        latency: u32,
    },
    /// A partition's epoch sample.
    Partition(&'a EpochSample),
    /// Cache-wide epoch activity.
    Epoch(&'a EpochActivity),
    /// An applied resize decision.
    Resize(&'a ResizeRecord),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_sample_miss_rate() {
        let mut s = EpochSample {
            epoch: 0,
            asid: Asid::new(1),
            accesses: 4,
            misses: 1,
            molecules: 2,
            rows: 2,
            occupancy: 0.5,
            goal: 0.25,
        };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        s.accesses = 0;
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn epoch_activity_converts() {
        let e = EpochActivity {
            epoch: 3,
            accesses: 10,
            ways_probed: 20,
            line_fills: 2,
            writebacks: 1,
            asid_compares: 20,
            ulmo_searches: 4,
            free_molecules: 7,
            memo_hits: 0,
            stages: molcache_sim::StageActivity::default(),
        };
        let a = e.as_activity();
        assert_eq!(a.accesses, 10);
        assert_eq!(a.ulmo_searches, 4);
    }

    #[test]
    fn resize_kind_names() {
        assert_eq!(ResizeKind::Grow.name(), "grow");
        assert_eq!(ResizeKind::Shrink.name(), "shrink");
    }
}
