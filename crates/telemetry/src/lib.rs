//! Epoch-based telemetry bus for the molecular cache.
//!
//! The paper's Algorithm 1 observes per-partition miss rates over
//! windows, resizes regions, and moves on — none of that dynamics is
//! visible in end-of-run summaries. This crate adds an event bus the
//! cache and simulation layers publish into:
//!
//! - [`EpochSample`] — per-partition, per-epoch accesses/misses/size/
//!   occupancy, the time-series behind a partition-size timeline;
//! - [`EpochActivity`] — cache-wide activity deltas per epoch, priced
//!   into energy by `molcache-power`'s `EnergyMeter` when one is set;
//! - [`Event::Access`] — per-reference latencies, folded into
//!   log2-bucketed [`LatencyHistogram`]s per app and globally;
//! - [`ResizeRecord`] — the structured log of every applied grow/shrink
//!   decision: which trigger fired, what was requested, what was applied.
//!
//! Consumers implement [`Sink`]; publishers hold a [`SinkHandle`]. The
//! default handle ([`SinkHandle::null`]) carries no sink, and every
//! publish site gates on [`SinkHandle::is_enabled`] before constructing
//! an event, so an unobserved cache pays one null-check per site and
//! produces bit-identical results. [`Recorder`] is the retaining sink:
//! it exports JSON time-series (via `molcache-metrics`' encoder) and
//! renders terminal tables and sparklines.
//!
//! Layering: this crate sits above `trace`/`sim`/`metrics`/`power` and
//! below `core`/`bench`. `core` publishes into it; `sim` stays
//! telemetry-agnostic (the [`SinkHandle`] implements `sim`'s
//! `AccessObserver` hook instead).

pub mod contention;
pub mod event;
pub mod hist;
pub mod recorder;
pub mod sink;

pub use contention::{imbalance, ShardContention};
pub use event::{
    EpochActivity, EpochSample, Event, ResizeDecisionInputs, ResizeKind, ResizeRecord,
};
pub use hist::LatencyHistogram;
pub use recorder::{runs_to_json, runs_to_value, Recorder};
pub use sink::{NullSink, Sink, SinkHandle};
