//! Log2-bucketed latency histograms.

/// A latency histogram with power-of-two buckets.
///
/// Bucket 0 counts zero-cycle latencies; bucket `b > 0` counts latencies
/// in `[2^(b-1), 2^b - 1]`. 33 buckets cover the full `u32` latency
/// domain, so recording never saturates or drops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; Self::BUCKETS],
    total: u64,
    sum: u64,
    max: u32,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; Self::BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Number of buckets (bucket 0 plus one per bit of `u32`).
    pub const BUCKETS: usize = 33;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// The bucket a latency value falls into.
    pub fn bucket_of(latency: u32) -> usize {
        (32 - latency.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket.
    pub fn bucket_bound(bucket: usize) -> u32 {
        if bucket == 0 {
            0
        } else {
            // Bucket 32's bound is u32::MAX; (1 << 32) would overflow.
            (((1u64 << bucket) - 1) as u32).max(1)
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: u32) {
        self.counts[Self::bucket_of(latency)] += 1;
        self.total += 1;
        self.sum += u64::from(latency);
        self.max = self.max.max(latency);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observed latencies (cycles).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed latency (0 when empty).
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Mean latency (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Per-bucket counts, index 0 first.
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`); 0 when empty. A log2 histogram cannot resolve
    /// quantiles below bucket granularity, so this is the conservative
    /// (upper) estimate.
    pub fn quantile(&self, q: f64) -> u32 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_bound(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_mapping() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(255), 8);
        assert_eq!(LatencyHistogram::bucket_of(256), 9);
        assert_eq!(LatencyHistogram::bucket_of(u32::MAX), 32);
        assert_eq!(LatencyHistogram::bucket_bound(0), 0);
        assert_eq!(LatencyHistogram::bucket_bound(1), 1);
        assert_eq!(LatencyHistogram::bucket_bound(2), 3);
        assert_eq!(LatencyHistogram::bucket_bound(9), 511);
        assert_eq!(LatencyHistogram::bucket_bound(32), u32::MAX);
    }

    #[test]
    fn record_and_summarize() {
        let mut h = LatencyHistogram::new();
        for lat in [10, 10, 10, 110] {
            h.record(lat);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 140);
        assert_eq!(h.max(), 110);
        assert!((h.mean() - 35.0).abs() < 1e-12);
        // Three of four observations are in the [8,15] bucket.
        assert_eq!(h.buckets()[4], 3);
        assert_eq!(h.quantile(0.5), 15);
        // The tail quantile is clamped to the observed max.
        assert_eq!(h.quantile(1.0), 110);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        a.record(10);
        let mut b = LatencyHistogram::new();
        b.record(200);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 210);
        assert_eq!(a.max(), 200);
        assert_eq!(a.buckets()[0], 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every observation lands in exactly one bucket whose bounds
        /// contain it, and quantiles never exceed the observed maximum.
        #[test]
        fn buckets_partition_the_domain(
            lats in proptest::collection::vec(proptest::num::u64::ANY, 1..50),
        ) {
            let mut h = LatencyHistogram::new();
            for &l in &lats {
                let l = l as u32;
                let b = LatencyHistogram::bucket_of(l);
                prop_assert!(l <= LatencyHistogram::bucket_bound(b));
                if b > 0 {
                    prop_assert!(u64::from(l) >= (1u64 << (b - 1)));
                }
                h.record(l);
            }
            prop_assert_eq!(h.count(), lats.len() as u64);
            prop_assert_eq!(h.buckets().iter().sum::<u64>(), lats.len() as u64);
            prop_assert!(h.quantile(0.5) <= h.max());
            prop_assert!(h.quantile(1.0) <= h.max());
        }
    }
}
