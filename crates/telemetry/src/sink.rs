//! The `Sink` trait and the shareable handle publishers hold.

use crate::event::Event;
use molcache_sim::{AccessObserver, AccessOutcome, Request};
use std::fmt;
use std::sync::{Arc, Mutex};

/// A consumer of telemetry events.
///
/// `Send` so a sink can ride inside a cache that crosses threads (the
/// bench `Engine` moves experiment points between workers).
pub trait Sink: Send {
    /// Consumes one event.
    fn record(&mut self, event: &Event<'_>);
}

/// A sink that drops every event.
///
/// The default: publishers short-circuit on [`SinkHandle::null`] before
/// building any event, so an unobserved cache does no telemetry work at
/// all beyond one pointer null-check per publish site.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline]
    fn record(&mut self, _event: &Event<'_>) {}
}

/// The handle a publisher (cache, driver, harness) holds.
///
/// Cloning shares the underlying sink — a cache and the driver observing
/// it can publish into the same recorder. The disabled handle
/// ([`SinkHandle::null`]) holds no sink at all; [`SinkHandle::is_enabled`]
/// is the zero-overhead fast path publishers check before doing any work.
#[derive(Clone, Default)]
pub struct SinkHandle {
    inner: Option<Arc<Mutex<dyn Sink>>>,
    epoch_length: u64,
}

impl SinkHandle {
    /// Epoch length used when none is given: fine enough to see resize
    /// dynamics (windows are ~25K accesses), coarse enough to keep
    /// time-series small.
    pub const DEFAULT_EPOCH_LENGTH: u64 = 10_000;

    /// The disabled handle (no sink, nothing published).
    pub fn null() -> Self {
        SinkHandle {
            inner: None,
            epoch_length: Self::DEFAULT_EPOCH_LENGTH,
        }
    }

    /// A handle publishing into `sink`, closing an epoch every
    /// `epoch_length` accesses (0 falls back to the default length).
    pub fn new<S: Sink + 'static>(sink: S, epoch_length: u64) -> Self {
        SinkHandle::shared(Arc::new(Mutex::new(sink)), epoch_length)
    }

    /// A handle around an already-shared sink (e.g. a recorder the caller
    /// keeps a reference to, to read results back out).
    pub fn shared(sink: Arc<Mutex<dyn Sink>>, epoch_length: u64) -> Self {
        SinkHandle {
            inner: Some(sink),
            epoch_length: if epoch_length == 0 {
                Self::DEFAULT_EPOCH_LENGTH
            } else {
                epoch_length
            },
        }
    }

    /// Whether a sink is attached. Publishers gate all event construction
    /// on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Accesses per epoch.
    pub fn epoch_length(&self) -> u64 {
        self.epoch_length
    }

    /// Delivers one event to the sink (no-op when disabled).
    pub fn emit(&self, event: Event<'_>) {
        if let Some(sink) = &self.inner {
            sink.lock().expect("telemetry sink lock").record(&event);
        }
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkHandle")
            .field("enabled", &self.is_enabled())
            .field("epoch_length", &self.epoch_length)
            .finish()
    }
}

/// Driving a cache with the handle as observer feeds per-access events
/// (and thus the latency histograms) into the same sink the cache
/// publishes its epoch samples to.
impl AccessObserver for SinkHandle {
    fn on_access(&mut self, req: &Request, out: &AccessOutcome) {
        self.emit(Event::Access {
            asid: req.asid,
            hit: out.hit,
            latency: out.latency,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molcache_trace::{AccessKind, Address, Asid};

    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Counting(Arc<AtomicU64>);
    impl Sink for Counting {
        fn record(&mut self, _event: &Event<'_>) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn null_handle_is_disabled() {
        let h = SinkHandle::null();
        assert!(!h.is_enabled());
        assert_eq!(h.epoch_length(), SinkHandle::DEFAULT_EPOCH_LENGTH);
        // Emitting into the void is a no-op, not a panic.
        h.emit(Event::Access {
            asid: Asid::new(1),
            hit: true,
            latency: 1,
        });
    }

    #[test]
    fn shared_handle_delivers_and_clones_share() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = SinkHandle::new(Counting(Arc::clone(&hits)), 500);
        assert!(h.is_enabled());
        assert_eq!(h.epoch_length(), 500);
        let h2 = h.clone();
        for handle in [&h, &h2] {
            handle.emit(Event::Access {
                asid: Asid::new(1),
                hit: false,
                latency: 100,
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 2, "clones share one sink");
    }

    #[test]
    fn observer_impl_forwards_latency() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = SinkHandle::new(Counting(Arc::clone(&hits)), 0);
        assert_eq!(h.epoch_length(), SinkHandle::DEFAULT_EPOCH_LENGTH);
        let mut obs = h.clone();
        let req = Request {
            asid: Asid::new(2),
            addr: Address::new(64),
            kind: AccessKind::Read,
        };
        obs.on_access(&req, &AccessOutcome::hit(12));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
