//! Property tests for the serving layer (satellite of the molserve PR):
//! arbitrary interleavings of `admit` / `access` / `resize` / `evict` /
//! `revoke` through a single-shard [`CacheService`] are observationally
//! identical to driving a plain single-threaded [`MolecularCache`]
//! through the equivalent lifecycle calls — same per-tenant statistics,
//! same access outcomes, same region state — and no access ever
//! succeeds through a revoked handle.
//!
//! With one shard the service adds only the router, the locks and the
//! handle validation around the cache; this test pins down that those
//! layers are pure plumbing.

use molcache_core::config::InitialAllocation;
use molcache_core::{MolecularCache, MolecularConfig, ResizeTrigger};
use molcache_serve::{CacheService, ServeError, TenantHandle};
use molcache_sim::{CacheModel, Request};
use molcache_trace::{AccessKind, Address, Asid};
use proptest::prelude::*;

/// Same torture geometry as the core memo property tests: small cache,
/// aggressive constant resize trigger, so short op sequences exercise
/// grows, shrinks and releases.
fn torture_config() -> MolecularConfig {
    MolecularConfig::builder()
        .molecule_size(1024)
        .tile_molecules(8)
        .tiles_per_cluster(2)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(2))
        .trigger(ResizeTrigger::Constant { period: 64 })
        .miss_rate_goal(0.05)
        .build()
        .unwrap()
}

const TENANTS: usize = 3;

/// One step of a generated interleaving, decoded from two raw u64
/// draws. Accesses dominate; lifecycle ops are sprinkled in.
#[derive(Debug, Clone, Copy)]
enum Op {
    Admit { t: usize },
    Access { t: usize, addr: u64, write: bool },
    Resize { t: usize, target: usize },
    Evict { t: usize },
    Revoke { t: usize },
}

fn decode(selector: u64, payload: u64) -> Op {
    let t = (payload % TENANTS as u64) as usize;
    match selector % 16 {
        11 => Op::Admit { t },
        12 => Op::Resize {
            t,
            target: ((payload >> 8) % 8 + 1) as usize,
        },
        13 => Op::Evict { t },
        14 | 15 => Op::Revoke { t },
        _ => Op::Access {
            t,
            // A handful of hot lines per tenant plus a streaming tail.
            addr: if payload.is_multiple_of(4) {
                (t as u64 + 1) * 4096 + (payload >> 4) % 4 * 64
            } else {
                (payload >> 4) % 256 * 64
            },
            write: payload.is_multiple_of(5),
        },
    }
}

fn asid(t: usize) -> Asid {
    Asid::new(t as u16 + 1)
}

fn request(t: usize, addr: u64, write: bool) -> Request {
    Request {
        asid: asid(t),
        addr: Address::new(addr),
        kind: if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    }
}

/// Tenant bookkeeping on the service side: the live handle if admitted,
/// plus the last revoked handle (which must keep failing forever).
#[derive(Default)]
struct Tenant {
    live: Option<TenantHandle>,
    stale: Option<TenantHandle>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The single-shard service is observationally identical to a bare
    /// cache: every access outcome, every lifecycle return value and
    /// the end-of-run statistics all agree.
    #[test]
    fn single_shard_service_is_a_transparent_wrapper(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 50..400),
    ) {
        let service = CacheService::new(1, |_| MolecularCache::new(torture_config()));
        let mut plain = MolecularCache::new(torture_config());
        let mut tenants: Vec<Tenant> = (0..TENANTS).map(|_| Tenant::default()).collect();

        for &(sel, payload) in &ops {
            match decode(sel, payload) {
                Op::Admit { t } => {
                    if tenants[t].live.is_some() {
                        prop_assert_eq!(
                            service.admit(asid(t)).err(),
                            Some(ServeError::AlreadyAdmitted(asid(t)))
                        );
                        prop_assert!(!plain.admit_app(asid(t)), "no-op on the plain side");
                    } else {
                        let handle = service.admit(asid(t)).unwrap();
                        tenants[t].live = Some(handle);
                        prop_assert!(plain.admit_app(asid(t)));
                    }
                }
                Op::Access { t, addr, write } => {
                    let req = request(t, addr, write);
                    if let Some(handle) = tenants[t].live {
                        let got = service.access(&handle, req).unwrap();
                        let want = plain.access(req);
                        prop_assert_eq!(got, want, "access outcomes diverged");
                    } else if let Some(stale) = tenants[t].stale {
                        // Revoked handles fail forever; the plain cache
                        // is not touched, keeping the models aligned.
                        prop_assert_eq!(
                            service.access(&stale, req).err(),
                            Some(ServeError::Revoked(asid(t)))
                        );
                    }
                }
                Op::Resize { t, target } => {
                    if let Some(handle) = tenants[t].live {
                        let got = service.resize(&handle, target).unwrap();
                        let want = plain.set_region_size(asid(t), target).unwrap();
                        prop_assert_eq!(got, want, "resize results diverged");
                    }
                }
                Op::Evict { t } => {
                    if let Some(handle) = tenants[t].live {
                        let got = service.evict(&handle).unwrap();
                        let want = plain.flush_region(asid(t)).unwrap();
                        prop_assert_eq!(got, want, "evict writeback counts diverged");
                    }
                }
                Op::Revoke { t } => {
                    if let Some(handle) = tenants[t].live.take() {
                        let got = service.revoke(&handle).unwrap();
                        let want = plain.release_region(asid(t)).unwrap();
                        prop_assert_eq!(got, want, "released molecule counts diverged");
                        tenants[t].stale = Some(handle);
                        // The moment revoke returns, the handle is dead.
                        prop_assert!(service
                            .access(&handle, request(t, 0, false))
                            .is_err());
                    }
                }
            }
        }

        // End-of-run equivalence: per-tenant statistics and the whole
        // shard cache state agree with the bare cache.
        for (t, tenant) in tenants.iter().enumerate() {
            if let Some(handle) = tenant.live {
                let got = service.tenant_stats(&handle).unwrap();
                let want = plain.stats().app(asid(t));
                prop_assert_eq!(got, want, "per-tenant stats diverged for tenant {}", t);
            }
        }
        let (stats, free, snapshots) =
            service.with_shard(0, |c| (c.stats().clone(), c.free_molecules(), c.snapshots()));
        prop_assert_eq!(&stats, plain.stats());
        prop_assert_eq!(free, plain.free_molecules());
        prop_assert_eq!(snapshots, plain.snapshots());
    }

    /// Stronger form of the revocation guarantee over arbitrary
    /// interleavings: after any `revoke`, every access through any
    /// handle issued for that tenancy fails with `Revoked` until (and
    /// unless) the tenant is admitted again — and a handle from a
    /// previous tenancy never works again even then.
    #[test]
    fn no_access_ever_succeeds_through_a_revoked_handle(
        ops in proptest::collection::vec(
            (proptest::num::u64::ANY, proptest::num::u64::ANY), 30..200),
    ) {
        let service = CacheService::new(1, |_| MolecularCache::new(torture_config()));
        let mut live: Vec<Option<TenantHandle>> = vec![None; TENANTS];
        let mut graveyard: Vec<TenantHandle> = Vec::new();

        for &(sel, payload) in &ops {
            match decode(sel, payload) {
                Op::Admit { t } => {
                    if live[t].is_none() {
                        live[t] = Some(service.admit(asid(t)).unwrap());
                    }
                }
                Op::Access { t, addr, write } => {
                    if let Some(handle) = live[t] {
                        service.access(&handle, request(t, addr, write)).unwrap();
                    }
                }
                Op::Resize { t, target } => {
                    if let Some(handle) = live[t] {
                        service.resize(&handle, target).unwrap();
                    }
                }
                Op::Evict { t } => {
                    if let Some(handle) = live[t] {
                        service.evict(&handle).unwrap();
                    }
                }
                Op::Revoke { t } => {
                    if let Some(handle) = live[t].take() {
                        service.revoke(&handle).unwrap();
                        graveyard.push(handle);
                    }
                }
            }
            // Every dead handle stays dead, whatever else happened.
            for dead in &graveyard {
                let t = dead.asid().raw() as usize - 1;
                prop_assert_eq!(
                    service.access(dead, request(t, 64, false)).err(),
                    Some(ServeError::Revoked(dead.asid()))
                );
            }
        }
    }
}
