//! The molserve determinism contract (acceptance criterion of the
//! molserve PR): replaying the same multi-tenant traffic through the
//! same service geometry yields bit-identical per-tenant statistics for
//! ANY worker thread count, because work is partitioned by shard and
//! each shard's operation sequence is fixed. The CI stress job repeats
//! this file to shake out scheduling-dependent regressions.

use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_serve::{replay, CacheService, ReplayOptions, ServeError};
use molcache_sim::{CacheModel, Request};
use molcache_trace::tenants::{interleave_chunked, tenant_traces};
use molcache_trace::Asid;

/// The molserve binary's per-shard geometry, scaled down 4× so the
/// test stays fast: one cluster of 2 tiles × 16 × 8 KiB molecules.
fn shard_cache(seed: u64, shard: usize) -> MolecularCache {
    let cfg = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(16)
        .tiles_per_cluster(2)
        .clusters(1)
        .policy(RegionPolicy::Randy)
        .miss_rate_goal(0.1)
        .trigger(ResizeTrigger::GlobalAdaptive {
            initial_period: 5_000,
        })
        .seed(seed ^ (shard as u64).wrapping_mul(0x9E3779B97F4A7C15))
        .build()
        .unwrap();
    MolecularCache::new(cfg)
}

fn service(shards: usize, seed: u64) -> CacheService {
    CacheService::new(shards, |i| shard_cache(seed, i))
}

/// 4 tenants / 4 shards / 4 threads vs the same on 1 thread: every
/// tenant's statistics are identical, field for field.
#[test]
fn four_threads_match_one_thread_bit_for_bit() {
    let traces = tenant_traces(4, 25_000, 0xA51D);
    let opts = |threads| ReplayOptions {
        threads,
        chunk: 256,
    };

    let multi = replay(&service(4, 7), &traces, opts(4)).unwrap();
    let single = replay(&service(4, 7), &traces, opts(1)).unwrap();

    assert_eq!(multi.tenants.len(), 4);
    assert_eq!(multi.total_accesses, 100_000);
    for (a, b) in multi.tenants.iter().zip(&single.tenants) {
        assert_eq!(
            a,
            b,
            "tenant {} diverged across thread counts",
            a.asid.raw()
        );
    }
    // Shard traffic counters agree too (wait times of course differ).
    for (a, b) in multi.shards.iter().zip(&single.shards) {
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.hits, b.hits);
    }
}

/// Thread counts that do not divide the shard count (and exceed it)
/// change nothing either.
#[test]
fn oversubscribed_and_ragged_thread_counts_agree() {
    let traces = tenant_traces(5, 8_000, 99);
    let baseline = replay(
        &service(3, 1),
        &traces,
        ReplayOptions {
            threads: 1,
            chunk: 64,
        },
    )
    .unwrap();
    for threads in [2, 3, 8] {
        let run = replay(
            &service(3, 1),
            &traces,
            ReplayOptions { threads, chunk: 64 },
        )
        .unwrap();
        for (a, b) in run.tenants.iter().zip(&baseline.tenants) {
            assert_eq!(a, b, "{threads}-thread replay diverged");
        }
    }
}

/// The shard-partitioned replay services exactly the serialized order
/// `interleave_chunked` defines: driving one bare cache with that
/// sequence reproduces the single-shard service's statistics.
#[test]
fn replay_order_matches_the_serialized_interleaving() {
    let traces = tenant_traces(3, 5_000, 11);
    let chunk = 128;

    let report = replay(&service(1, 5), &traces, ReplayOptions { threads: 1, chunk }).unwrap();

    let mut bare = shard_cache(5, 0);
    for t in &traces {
        bare.admit_app(t.asid);
    }
    for access in interleave_chunked(&traces, chunk) {
        bare.access(Request::from(access));
    }
    for t in &report.tenants {
        assert_eq!(
            t.stats,
            bare.stats().app(t.asid),
            "service replay diverged from the serialized reference for {}",
            t.benchmark
        );
    }
}

/// Heterogeneous policies stay deterministic: with shard 0 on the
/// default `paper-algorithm1` policy and shard 1 on
/// `memshare-pressure`, per-tenant statistics are bit-identical across
/// worker thread counts, and the policy assignment itself is stable.
#[test]
fn heterogeneous_shard_policies_are_thread_count_invariant() {
    let traces = tenant_traces(4, 20_000, 0xBEE5);
    let heterogeneous = |threads| {
        let svc = service(2, 13);
        let cfg = svc.with_shard(1, |c| c.config().clone());
        svc.set_shard_policy(
            1,
            molcache_core::policy::by_name("memshare-pressure", &cfg).unwrap(),
        )
        .unwrap();
        assert_eq!(svc.shard_policy_name(0), Ok("paper-algorithm1"));
        assert_eq!(svc.shard_policy_name(1), Ok("memshare-pressure"));
        replay(
            &svc,
            &traces,
            ReplayOptions {
                threads,
                chunk: 128,
            },
        )
        .unwrap()
    };

    let single = heterogeneous(1);
    assert_eq!(single.tenants.len(), 4);
    for threads in [2, 4, 8] {
        let multi = heterogeneous(threads);
        for (a, b) in multi.tenants.iter().zip(&single.tenants) {
            assert_eq!(
                a,
                b,
                "tenant {} diverged across thread counts under mixed policies",
                a.asid.raw()
            );
        }
        for (a, b) in multi.shards.iter().zip(&single.shards) {
            assert_eq!(a.accesses, b.accesses);
            assert_eq!(a.hits, b.hits);
        }
    }

    // Policy isolation: swapping shard 1's policy must leave shard 0's
    // tenants exactly where an all-default run puts them.
    let homogeneous = replay(
        &service(2, 13),
        &traces,
        ReplayOptions {
            threads: 1,
            chunk: 128,
        },
    )
    .unwrap();
    // Shard 0 (default policy in both runs) is untouched by the swap.
    let on_shard0: Vec<_> = single.tenants.iter().filter(|t| t.shard == 0).collect();
    for t in &on_shard0 {
        let same = homogeneous
            .tenants
            .iter()
            .find(|h| h.asid == t.asid)
            .unwrap();
        assert_eq!(*t, same, "shard-0 tenants must not see shard 1's policy");
    }
}

/// Per-tenant runtime goals are part of the deterministic state: the
/// same SLA adjustment before the same traffic yields bit-identical
/// statistics whether the shards run serially or concurrently.
#[test]
fn runtime_goal_changes_replay_deterministically() {
    let traces = tenant_traces(3, 12_000, 0x60A1);
    let requests: Vec<Vec<Request>> = traces
        .iter()
        .map(|t| t.accesses.iter().map(|&a| Request::from(a)).collect())
        .collect();

    // Three tenants on three shards: each tenant is alone on its
    // cluster, so per-tenant drivers can run on any thread layout.
    let run = |concurrent: bool| {
        let svc = service(3, 21);
        let handles: Vec<_> = traces.iter().map(|t| svc.admit(t.asid).unwrap()).collect();
        svc.set_tenant_goal(&handles[1], 0.02).unwrap();
        let drive = |tenant: usize| {
            for chunk in requests[tenant].chunks(64) {
                svc.access_batch(&handles[tenant], chunk).unwrap();
            }
        };
        if concurrent {
            std::thread::scope(|scope| {
                let drive = &drive;
                for tenant in 0..traces.len() {
                    scope.spawn(move || drive(tenant));
                }
            });
        } else {
            for tenant in 0..traces.len() {
                drive(tenant);
            }
        }
        handles
            .iter()
            .map(|h| svc.tenant_stats(h).unwrap())
            .collect::<Vec<_>>()
    };

    let serial = run(false);
    let threaded = run(true);
    assert_eq!(serial, threaded, "goal-adjusted replay diverged");
}

/// Revocation under concurrency: revoke returns only after the shard
/// lock has been cycled, so a worker hammering the revoked handle never
/// sees a success afterwards — its first post-revoke acquisition fails.
#[test]
fn revoked_handle_fails_from_other_threads_once_revoke_returns() {
    let svc = service(1, 3);
    let asid = Asid::new(1);
    let handle = svc.admit(asid).unwrap();
    let req = Request {
        asid,
        addr: molcache_trace::Address::new(64),
        kind: molcache_trace::AccessKind::Read,
    };

    std::thread::scope(|scope| {
        let svc = &svc;
        let worker = scope.spawn(move || {
            // Spin until the revocation lands, then prove it is final.
            let mut successes_after_failure = 0u64;
            let mut failed = false;
            for i in 0..5_000_000u64 {
                // Give the revoking thread scheduling room on small hosts.
                if !failed && i % 256 == 0 {
                    std::thread::yield_now();
                }
                match svc.access(&handle, req) {
                    Ok(_) if failed => successes_after_failure += 1,
                    Ok(_) => {}
                    Err(ServeError::Revoked(_)) if failed => break,
                    Err(ServeError::Revoked(_)) => failed = true,
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            (failed, successes_after_failure)
        });

        svc.revoke(&handle).unwrap();
        // From this point every further access must fail — including
        // from this thread, immediately.
        assert_eq!(
            svc.access(&handle, req).err(),
            Some(ServeError::Revoked(asid))
        );

        let (failed, successes_after_failure) = worker.join().unwrap();
        assert!(failed, "worker observed the revocation");
        assert_eq!(
            successes_after_failure, 0,
            "no access may succeed after one has failed revoked"
        );
    });
}
