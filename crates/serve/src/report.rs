//! The `molcache-serve-v1` replay document: what `molserve --json`
//! emits and `molstat --serve` renders. Hand-rolled JSON via
//! `molcache-metrics`' encoder, mirroring the bench crate's
//! `molcache-bench-v1` idiom.

use crate::replay::ReplayReport;
use molcache_metrics::json::{self, JsonError, Value};
use molcache_sim::AppStats;
use molcache_telemetry::ShardContention;
use molcache_trace::Asid;

/// Schema tag for serve replay documents.
pub const SERVE_SCHEMA: &str = "molcache-serve-v1";

/// A serialization-friendly replay record: the [`ReplayReport`] plus
/// the run parameters needed to reproduce it.
#[derive(Debug, Clone)]
pub struct ServeDoc {
    /// Tenant count.
    pub tenants: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Cluster shards in the service.
    pub shards: usize,
    /// Accesses per tenant.
    pub refs_per_tenant: u64,
    /// Trace seed.
    pub seed: u64,
    /// Wall-clock nanoseconds of the replay.
    pub wall_ns: u64,
    /// Replay throughput.
    pub accesses_per_sec: f64,
    /// Cross-shard load imbalance.
    pub imbalance: f64,
    /// Per-tenant records, admission order.
    pub per_tenant: Vec<TenantRecord>,
    /// Per-shard contention records.
    pub per_shard: Vec<ShardContention>,
}

/// One tenant's row in the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRecord {
    /// Tenant ASID.
    pub asid: u16,
    /// Benchmark personality name.
    pub benchmark: String,
    /// Shard the tenant was served from.
    pub shard: usize,
    /// The shard cache's statistics for this tenant.
    pub stats: AppStats,
}

impl ServeDoc {
    /// Builds a document from a finished replay and its parameters.
    pub fn from_report(
        report: &ReplayReport,
        refs_per_tenant: u64,
        seed: u64,
        shards: usize,
    ) -> Self {
        ServeDoc {
            tenants: report.tenants.len(),
            threads: report.threads,
            shards,
            refs_per_tenant,
            seed,
            wall_ns: report.wall_ns,
            accesses_per_sec: report.accesses_per_sec(),
            imbalance: report.imbalance(),
            per_tenant: report
                .tenants
                .iter()
                .map(|t| TenantRecord {
                    asid: t.asid.raw(),
                    benchmark: t.benchmark.clone(),
                    shard: t.shard,
                    stats: t.stats,
                })
                .collect(),
            per_shard: report.shards.clone(),
        }
    }

    /// Encodes the document as a JSON tree.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".into(), Value::String(SERVE_SCHEMA.into())),
            ("tenants".into(), Value::Number(self.tenants as f64)),
            ("threads".into(), Value::Number(self.threads as f64)),
            ("shards".into(), Value::Number(self.shards as f64)),
            (
                "refs_per_tenant".into(),
                Value::Number(self.refs_per_tenant as f64),
            ),
            ("seed".into(), Value::Number(self.seed as f64)),
            ("wall_ns".into(), Value::Number(self.wall_ns as f64)),
            (
                "accesses_per_sec".into(),
                Value::Number(self.accesses_per_sec),
            ),
            ("imbalance".into(), Value::Number(self.imbalance)),
            (
                "per_tenant".into(),
                Value::Array(self.per_tenant.iter().map(tenant_value).collect()),
            ),
            (
                "per_shard".into(),
                Value::Array(self.per_shard.iter().map(shard_value).collect()),
            ),
        ])
    }

    /// Encodes the document as pretty-printed JSON.
    pub fn to_json(&self) -> Result<String, JsonError> {
        self.to_value().to_json()
    }

    /// Decodes a document, checking the schema tag.
    pub fn from_json(input: &str) -> Result<ServeDoc, String> {
        let value = json::parse(input).map_err(|e| format!("parse error: {e}"))?;
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema tag")?;
        if schema != SERVE_SCHEMA {
            return Err(format!("expected schema {SERVE_SCHEMA}, got {schema}"));
        }
        let num = |name: &str| -> Result<f64, String> {
            value
                .get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing number field '{name}'"))
        };
        let per_tenant = value
            .get("per_tenant")
            .and_then(Value::as_array)
            .ok_or("missing per_tenant array")?
            .iter()
            .map(parse_tenant)
            .collect::<Result<Vec<_>, _>>()?;
        let per_shard = value
            .get("per_shard")
            .and_then(Value::as_array)
            .ok_or("missing per_shard array")?
            .iter()
            .map(parse_shard)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServeDoc {
            tenants: num("tenants")? as usize,
            threads: num("threads")? as usize,
            shards: num("shards")? as usize,
            refs_per_tenant: num("refs_per_tenant")? as u64,
            seed: num("seed")? as u64,
            wall_ns: num("wall_ns")? as u64,
            accesses_per_sec: num("accesses_per_sec")?,
            imbalance: num("imbalance")?,
            per_tenant,
            per_shard,
        })
    }
}

fn tenant_value(t: &TenantRecord) -> Value {
    Value::Object(vec![
        ("asid".into(), Value::Number(t.asid as f64)),
        ("benchmark".into(), Value::String(t.benchmark.clone())),
        ("shard".into(), Value::Number(t.shard as f64)),
        ("accesses".into(), Value::Number(t.stats.accesses as f64)),
        ("hits".into(), Value::Number(t.stats.hits as f64)),
        ("misses".into(), Value::Number(t.stats.misses as f64)),
        (
            "writebacks".into(),
            Value::Number(t.stats.writebacks as f64),
        ),
        (
            "total_latency".into(),
            Value::Number(t.stats.total_latency as f64),
        ),
    ])
}

fn parse_tenant(v: &Value) -> Result<TenantRecord, String> {
    let num = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Value::as_f64)
            .map(|n| n as u64)
            .ok_or_else(|| format!("tenant record missing '{name}'"))
    };
    Ok(TenantRecord {
        asid: num("asid")? as u16,
        benchmark: v
            .get("benchmark")
            .and_then(Value::as_str)
            .ok_or("tenant record missing 'benchmark'")?
            .to_string(),
        shard: num("shard")? as usize,
        stats: AppStats {
            accesses: num("accesses")?,
            hits: num("hits")?,
            misses: num("misses")?,
            writebacks: num("writebacks")?,
            total_latency: num("total_latency")?,
        },
    })
}

fn shard_value(s: &ShardContention) -> Value {
    Value::Object(vec![
        ("shard".into(), Value::Number(s.shard as f64)),
        ("acquisitions".into(), Value::Number(s.acquisitions as f64)),
        ("contended".into(), Value::Number(s.contended as f64)),
        ("lock_wait_ns".into(), Value::Number(s.lock_wait_ns as f64)),
        (
            "max_queue_depth".into(),
            Value::Number(s.max_queue_depth as f64),
        ),
        ("accesses".into(), Value::Number(s.accesses as f64)),
        ("hits".into(), Value::Number(s.hits as f64)),
    ])
}

fn parse_shard(v: &Value) -> Result<ShardContention, String> {
    let num = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Value::as_f64)
            .map(|n| n as u64)
            .ok_or_else(|| format!("shard record missing '{name}'"))
    };
    Ok(ShardContention {
        shard: num("shard")? as usize,
        acquisitions: num("acquisitions")?,
        contended: num("contended")?,
        lock_wait_ns: num("lock_wait_ns")?,
        max_queue_depth: num("max_queue_depth")?,
        accesses: num("accesses")?,
        hits: num("hits")?,
    })
}

/// Convenience: the ASID a tenant row refers to.
pub fn record_asid(record: &TenantRecord) -> Asid {
    Asid::new(record.asid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> ServeDoc {
        ServeDoc {
            tenants: 2,
            threads: 4,
            shards: 2,
            refs_per_tenant: 1000,
            seed: 42,
            wall_ns: 5_000_000,
            accesses_per_sec: 400_000.0,
            imbalance: 1.25,
            per_tenant: vec![
                TenantRecord {
                    asid: 1,
                    benchmark: "mcf".into(),
                    shard: 0,
                    stats: AppStats {
                        accesses: 1000,
                        hits: 600,
                        misses: 400,
                        writebacks: 55,
                        total_latency: 123_456,
                    },
                },
                TenantRecord {
                    asid: 2,
                    benchmark: "art".into(),
                    shard: 1,
                    stats: AppStats {
                        accesses: 1000,
                        hits: 900,
                        misses: 100,
                        writebacks: 7,
                        total_latency: 65_432,
                    },
                },
            ],
            per_shard: vec![
                ShardContention {
                    shard: 0,
                    acquisitions: 10,
                    contended: 2,
                    lock_wait_ns: 900,
                    max_queue_depth: 3,
                    accesses: 1000,
                    hits: 600,
                },
                ShardContention {
                    shard: 1,
                    acquisitions: 8,
                    contended: 0,
                    lock_wait_ns: 0,
                    max_queue_depth: 1,
                    accesses: 1000,
                    hits: 900,
                },
            ],
        }
    }

    #[test]
    fn document_round_trips_through_json() {
        let original = doc();
        let text = original.to_json().unwrap();
        let parsed = ServeDoc::from_json(&text).unwrap();
        assert_eq!(parsed.tenants, original.tenants);
        assert_eq!(parsed.threads, original.threads);
        assert_eq!(parsed.per_tenant, original.per_tenant);
        assert_eq!(parsed.per_shard, original.per_shard);
        assert_eq!(parsed.wall_ns, original.wall_ns);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err = ServeDoc::from_json(r#"{"schema": "molcache-bench-v1"}"#).unwrap_err();
        assert!(err.contains("molcache-serve-v1"), "{err}");
    }
}
