//! molserve — replay interleaved multi-tenant traffic through a
//! sharded cache service.
//!
//! ```text
//! molserve [--tenants N] [--threads M] [--shards K] [--refs N]
//!          [--seed S] [--chunk C] [--policy NAME[,NAME...]]
//!          [--verify] [--json]
//! ```
//!
//! Defaults: 4 tenants on 4 shards driven by 4 threads, 100k accesses
//! per tenant. `--policy` assigns resize policies to shards round-robin
//! (one name = homogeneous, a list = heterogeneous service; see
//! `molcache_core::policy::POLICY_NAMES`). `--verify` re-runs the same
//! traffic on a fresh, identically configured service with one thread
//! and checks that every tenant's statistics are bit-identical (exit 1
//! if not) — the determinism property the shard-partitioned replay
//! guarantees, which holds for any policy mix. `--json` emits the
//! `molcache-serve-v1` document on stdout instead of the human-readable
//! tables (pipe into a file for `molstat --serve`).

use molcache_core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molcache_serve::{replay, CacheService, ReplayOptions, ReplayReport, ServeDoc};
use molcache_trace::tenants::{tenant_traces, TenantTrace};
use std::process::ExitCode;

struct Args {
    tenants: usize,
    threads: usize,
    shards: usize,
    refs: u64,
    seed: u64,
    chunk: usize,
    policies: Vec<String>,
    verify: bool,
    json: bool,
}

const USAGE: &str = "usage: molserve [--tenants N] [--threads M] [--shards K] \
                     [--refs N] [--seed S] [--chunk C] \
                     [--policy NAME[,NAME...]] [--verify] [--json]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tenants: 4,
        threads: 4,
        shards: 0, // 0 = follow --tenants
        refs: 100_000,
        seed: 0xA51D,
        chunk: 256,
        policies: Vec::new(),
        verify: false,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad value for {name}: {e}"))
        };
        match arg.as_str() {
            "--tenants" => args.tenants = num("--tenants")? as usize,
            "--threads" => args.threads = num("--threads")? as usize,
            "--shards" => args.shards = num("--shards")? as usize,
            "--refs" => args.refs = num("--refs")?,
            "--seed" => args.seed = num("--seed")?,
            "--chunk" => args.chunk = num("--chunk")? as usize,
            "--policy" => {
                let list = it.next().ok_or("--policy needs a value")?;
                args.policies = list.split(',').map(str::to_string).collect();
            }
            "--verify" => args.verify = true,
            "--json" => args.json = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if args.shards == 0 {
        args.shards = args.tenants;
    }
    if args.tenants == 0 || args.tenants > 0x7FFF {
        return Err("--tenants must be between 1 and 32767".into());
    }
    Ok(args)
}

/// One 1 MiB cluster per shard (4 tiles of 32 × 8 KiB molecules),
/// Randy replacement, adaptive Algorithm-1 resizing. Seeds are
/// decorrelated per shard but fixed by `--seed`, so two services built
/// from the same arguments are identical.
fn shard_cache(seed: u64, shard: usize) -> MolecularCache {
    let cfg: MolecularConfig = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(32)
        .tiles_per_cluster(4)
        .clusters(1)
        .policy(RegionPolicy::Randy)
        .miss_rate_goal(0.1)
        .trigger(ResizeTrigger::GlobalAdaptive {
            initial_period: 25_000,
        })
        .seed(seed ^ (shard as u64).wrapping_mul(0x9E3779B97F4A7C15))
        .build()
        .expect("molserve geometry is valid");
    MolecularCache::new(cfg)
}

fn run(args: &Args, traces: &[TenantTrace], threads: usize) -> ReplayReport {
    let service = CacheService::new(args.shards, |i| shard_cache(args.seed, i));
    if !args.policies.is_empty() {
        for shard in 0..args.shards {
            let name = &args.policies[shard % args.policies.len()];
            let cfg = service.with_shard(shard, |c| c.config().clone());
            match molcache_core::policy::by_name(name, &cfg) {
                Some(policy) => service
                    .set_shard_policy(shard, policy)
                    .expect("shard index is in range"),
                None => {
                    eprintln!(
                        "molserve: unknown policy '{name}' (known: {})",
                        molcache_core::policy::POLICY_NAMES.join(", ")
                    );
                    std::process::exit(1);
                }
            }
        }
    }
    let opts = ReplayOptions {
        threads,
        chunk: args.chunk,
    };
    match replay(&service, traces, opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("molserve: replay failed: {e}");
            std::process::exit(1);
        }
    }
}

fn print_report(report: &ReplayReport) {
    println!(
        "replayed {} accesses from {} tenants on {} threads in {:.1} ms ({:.0} acc/s)",
        report.total_accesses,
        report.tenants.len(),
        report.threads,
        report.wall_ns as f64 / 1e6,
        report.accesses_per_sec(),
    );
    println!();
    println!("  tenant  benchmark   shard   accesses      hit%   writebacks");
    for t in &report.tenants {
        println!(
            "  {:>6}  {:<10} {:>5} {:>10}   {:>6.2}% {:>12}",
            t.asid.raw(),
            t.benchmark,
            t.shard,
            t.stats.accesses,
            t.stats.hit_rate() * 100.0,
            t.stats.writebacks,
        );
    }
    println!();
    println!("  shard   acquisitions  contended   wait(us)  maxq   accesses    hit%");
    for s in &report.shards {
        println!(
            "  {:>5} {:>14} {:>10} {:>10.1} {:>5} {:>10}  {:>5.1}%",
            s.shard,
            s.acquisitions,
            s.contended,
            s.lock_wait_ns as f64 / 1e3,
            s.max_queue_depth,
            s.accesses,
            s.hit_rate() * 100.0,
        );
    }
    println!();
    println!("  imbalance {:.3}", report.imbalance());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let traces = tenant_traces(args.tenants, args.refs, args.seed);
    let report = run(&args, &traces, args.threads);

    if args.verify {
        let reference = run(&args, &traces, 1);
        let mut clean = true;
        for (got, want) in report.tenants.iter().zip(&reference.tenants) {
            if got.stats != want.stats {
                eprintln!(
                    "verify: tenant {} diverged: {}-thread {:?} vs 1-thread {:?}",
                    got.asid.raw(),
                    report.threads,
                    got.stats,
                    want.stats,
                );
                clean = false;
            }
        }
        if !clean {
            return ExitCode::FAILURE;
        }
        if !args.json {
            eprintln!(
                "verify: per-tenant stats identical across {} threads vs 1",
                report.threads
            );
        }
    }

    if args.json {
        let doc = ServeDoc::from_report(&report, args.refs, args.seed, args.shards);
        match doc.to_json() {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("molserve: JSON encoding failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        if !args.policies.is_empty() {
            let map: Vec<String> = (0..args.shards)
                .map(|s| format!("{s}:{}", args.policies[s % args.policies.len()]))
                .collect();
            println!("shard policies  {}", map.join("  "));
        }
        print_report(&report);
    }
    ExitCode::SUCCESS
}
