//! ASID → shard routing with generation-counted tenancies.
//!
//! The router is a dense table — one `AtomicU64` per possible ASID,
//! the same dense-array trade the core's `RegionTable` makes (the ASID
//! space is 16 bits, so the whole table is 512 KiB and every lookup is
//! one indexed atomic load, no hashing, no locks).
//!
//! Each slot packs three fields:
//!
//! ```text
//! bit 0       active   — 1 while the ASID has a live tenancy
//! bits 1..16  shard    — which cluster shard owns the ASID
//! bits 16..   generation — bumped on every admit and revoke
//! ```
//!
//! A [`TenantHandle`] records the entire slot word (`token`) at
//! admission. Validation is a single load-and-compare: any lifecycle
//! transition since the handle was issued changed the generation, so
//! the comparison fails and the caller gets [`ServeError::Revoked`]
//! (see `service.rs` for where validation sits relative to the shard
//! lock). Slot *writes* happen only under the service's admin lock;
//! the atomics are for the lock-free reads on the access path.
//!
//! [`ServeError::Revoked`]: crate::ServeError::Revoked

use molcache_trace::Asid;
use std::sync::atomic::{AtomicU64, Ordering};

const ACTIVE_BIT: u64 = 1;
const SHARD_SHIFT: u32 = 1;
const SHARD_MASK: u64 = 0x7FFF; // 15 bits
const GEN_SHIFT: u32 = 16;

/// A capability for one tenancy: ASID, owning shard, and the router
/// word at admission time. Cheap to copy; sharable across the threads
/// driving one tenant's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantHandle {
    pub(crate) asid: Asid,
    pub(crate) shard: usize,
    pub(crate) token: u64,
}

impl TenantHandle {
    /// The tenant's ASID.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The shard this tenancy was placed on.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// Dense ASID → (active, shard, generation) table.
pub struct TenantRouter {
    slots: Vec<AtomicU64>,
}

impl TenantRouter {
    /// One slot for every representable ASID.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(1 << 16);
        slots.resize_with(1 << 16, || AtomicU64::new(0));
        TenantRouter { slots }
    }

    fn slot(&self, asid: Asid) -> &AtomicU64 {
        &self.slots[asid.raw() as usize]
    }

    /// Whether `asid` currently has an active tenancy.
    pub fn is_active(&self, asid: Asid) -> bool {
        self.slot(asid).load(Ordering::Acquire) & ACTIVE_BIT != 0
    }

    /// The shard owning `asid`, if active.
    pub fn shard_of(&self, asid: Asid) -> Option<usize> {
        let word = self.slot(asid).load(Ordering::Acquire);
        (word & ACTIVE_BIT != 0).then_some(((word >> SHARD_SHIFT) & SHARD_MASK) as usize)
    }

    /// Activates a tenancy on `shard` and returns the new slot word —
    /// the handle token. Caller must hold the admin lock and must have
    /// checked the slot is inactive.
    pub(crate) fn activate(&self, asid: Asid, shard: usize) -> u64 {
        debug_assert!(shard as u64 <= SHARD_MASK);
        let slot = self.slot(asid);
        let generation = (slot.load(Ordering::Relaxed) >> GEN_SHIFT) + 1;
        let word = (generation << GEN_SHIFT) | ((shard as u64) << SHARD_SHIFT) | ACTIVE_BIT;
        slot.store(word, Ordering::Release);
        word
    }

    /// Deactivates `asid`'s tenancy, bumping the generation so every
    /// outstanding handle fails validation. Caller must hold the admin
    /// lock.
    pub(crate) fn deactivate(&self, asid: Asid) {
        let slot = self.slot(asid);
        let generation = (slot.load(Ordering::Relaxed) >> GEN_SHIFT) + 1;
        slot.store(generation << GEN_SHIFT, Ordering::Release);
    }

    /// Whether `handle` still names the current tenancy of its ASID.
    pub fn validate(&self, handle: &TenantHandle) -> bool {
        self.slot(handle.asid).load(Ordering::Acquire) == handle.token
    }
}

impl Default for TenantRouter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_round_trips_shard_and_validates() {
        let router = TenantRouter::new();
        let asid = Asid::new(7);
        assert!(!router.is_active(asid));
        assert_eq!(router.shard_of(asid), None);

        let token = router.activate(asid, 3);
        let handle = TenantHandle {
            asid,
            shard: 3,
            token,
        };
        assert!(router.is_active(asid));
        assert_eq!(router.shard_of(asid), Some(3));
        assert!(router.validate(&handle));
    }

    #[test]
    fn deactivation_invalidates_old_handles_forever() {
        let router = TenantRouter::new();
        let asid = Asid::new(1);
        let first = TenantHandle {
            asid,
            shard: 0,
            token: router.activate(asid, 0),
        };
        router.deactivate(asid);
        assert!(!router.is_active(asid));
        assert!(!router.validate(&first), "revoked handle must fail");

        // Re-admission mints a fresh generation: the new handle works,
        // the old one still fails.
        let second = TenantHandle {
            asid,
            shard: 2,
            token: router.activate(asid, 2),
        };
        assert!(router.validate(&second));
        assert!(!router.validate(&first), "stale across re-admit too");
        assert_eq!(router.shard_of(asid), Some(2));
    }

    #[test]
    fn generations_increase_monotonically() {
        let router = TenantRouter::new();
        let asid = Asid::new(9);
        let mut last = 0;
        for round in 0..5 {
            let token = router.activate(asid, round % 4);
            let generation = token >> GEN_SHIFT;
            assert!(generation > last, "generation must grow");
            last = generation;
            router.deactivate(asid);
        }
    }
}
