//! Error type for the serving layer.

use molcache_trace::Asid;
use std::fmt;

/// Why a service call was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// `admit` for an ASID that already has an active tenancy.
    AlreadyAdmitted(Asid),
    /// `admit_to` named a shard the service does not have.
    UnknownShard {
        /// The shard index that was requested.
        shard: usize,
        /// How many shards the service has.
        shards: usize,
    },
    /// The handle's generation no longer matches the router slot: the
    /// tenancy was revoked (and possibly re-admitted) after the handle
    /// was issued. In-flight work holding such a handle must stop.
    Revoked(Asid),
    /// A request carried a different ASID than the handle it was
    /// submitted under — tenants cannot issue traffic for each other.
    AsidMismatch {
        /// The handle's ASID.
        handle: Asid,
        /// The request's ASID.
        request: Asid,
    },
    /// `set_tenant_goal` was given a miss-rate goal outside `(0, 1)`.
    InvalidGoal(Asid),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::AlreadyAdmitted(asid) => {
                write!(f, "asid {} is already admitted", asid.raw())
            }
            ServeError::UnknownShard { shard, shards } => {
                write!(f, "shard {shard} does not exist (service has {shards})")
            }
            ServeError::Revoked(asid) => {
                write!(f, "tenancy of asid {} was revoked", asid.raw())
            }
            ServeError::AsidMismatch { handle, request } => write!(
                f,
                "request asid {} does not match handle asid {}",
                request.raw(),
                handle.raw()
            ),
            ServeError::InvalidGoal(asid) => {
                write!(
                    f,
                    "miss-rate goal for asid {} must lie in (0, 1)",
                    asid.raw()
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}
