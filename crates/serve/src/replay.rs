//! Deterministic multi-threaded trace replay.
//!
//! The replay partitions work by **shard**, never by tenant: every
//! shard's tenant group is driven by exactly one worker at a time, in
//! chunked round-robin order over the group (the same order
//! `molcache_trace::tenants::interleave_chunked` serializes). Worker
//! threads pull whole shards off an atomic work queue. Since shards
//! share no cache state, the sequence of operations applied to each
//! cache is a pure function of `(traces, shards, chunk)` — the thread
//! count only changes which shards run concurrently, not what any
//! shard does. Per-tenant statistics are therefore bit-identical
//! across thread counts, which is what `molserve --verify` and the
//! determinism tests check.

use crate::error::ServeError;
use crate::router::TenantHandle;
use crate::service::CacheService;
use molcache_sim::{AppStats, Request};
use molcache_telemetry::ShardContention;
use molcache_trace::tenants::TenantTrace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Replay knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReplayOptions {
    /// Worker threads driving the shards.
    pub threads: usize,
    /// Accesses per tenant per turn of the in-shard round-robin.
    pub chunk: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            threads: 1,
            chunk: 256,
        }
    }
}

/// One tenant's end-of-replay accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantReport {
    /// The tenant's ASID.
    pub asid: molcache_trace::Asid,
    /// Benchmark personality name (from the trace).
    pub benchmark: String,
    /// Shard the tenant was served from.
    pub shard: usize,
    /// Accesses replayed for this tenant.
    pub replayed: u64,
    /// The shard cache's per-app statistics for this tenant.
    pub stats: AppStats,
}

/// What a replay produced.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-tenant accounting, in admission order.
    pub tenants: Vec<TenantReport>,
    /// Per-shard contention counters.
    pub shards: Vec<ShardContention>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock nanoseconds for the replay proper (admissions and
    /// stat collection excluded).
    pub wall_ns: u64,
    /// Total accesses across all tenants.
    pub total_accesses: u64,
}

impl ReplayReport {
    /// Replay throughput in accesses per second.
    pub fn accesses_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.total_accesses as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Cross-shard load imbalance.
    pub fn imbalance(&self) -> f64 {
        molcache_telemetry::imbalance(&self.shards)
    }
}

/// Admits every tenant (round-robin placement) and replays their
/// traces across `opts.threads` workers.
pub fn replay(
    service: &CacheService,
    traces: &[TenantTrace],
    opts: ReplayOptions,
) -> Result<ReplayReport, ServeError> {
    let handles: Vec<TenantHandle> = traces
        .iter()
        .map(|t| service.admit(t.asid))
        .collect::<Result<_, _>>()?;

    // Requests up front, so conversion cost is outside the timed region.
    let requests: Vec<Vec<Request>> = traces
        .iter()
        .map(|t| t.accesses.iter().map(|&a| a.into()).collect())
        .collect();

    // Group tenants by the shard they landed on; each group is one
    // unit of work.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); service.shard_count()];
    for (i, h) in handles.iter().enumerate() {
        groups[h.shard()].push(i);
    }
    let groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();

    let threads = opts.threads.max(1);
    let chunk = opts.chunk.max(1);
    let next_group = AtomicUsize::new(0);

    let drive_group = |group: &[usize]| -> Result<(), ServeError> {
        // Chunked round-robin over the group's tenants: the exact
        // order `interleave_chunked` serializes.
        let mut cursors = vec![0usize; group.len()];
        let mut live = group.len();
        while live > 0 {
            live = 0;
            for (slot, &tenant) in group.iter().enumerate() {
                let reqs = &requests[tenant];
                let at = cursors[slot];
                if at >= reqs.len() {
                    continue;
                }
                let end = (at + chunk).min(reqs.len());
                service.access_batch(&handles[tenant], &reqs[at..end])?;
                cursors[slot] = end;
                live += 1;
            }
        }
        Ok(())
    };

    let start = Instant::now();
    let worker = || -> Result<(), ServeError> {
        loop {
            let g = next_group.fetch_add(1, Ordering::Relaxed);
            let Some(group) = groups.get(g) else {
                return Ok(());
            };
            drive_group(group)?;
        }
    };
    if threads == 1 {
        worker()?;
    } else {
        std::thread::scope(|scope| {
            let joins: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            joins
                .into_iter()
                .try_for_each(|j| j.join().expect("replay worker panicked"))
        })?;
    }
    let wall_ns = start.elapsed().as_nanos() as u64;

    let tenants = traces
        .iter()
        .zip(&handles)
        .map(|(t, h)| {
            Ok(TenantReport {
                asid: t.asid,
                benchmark: t.benchmark.name().to_string(),
                shard: h.shard(),
                replayed: t.accesses.len() as u64,
                stats: service.tenant_stats(h)?,
            })
        })
        .collect::<Result<Vec<_>, ServeError>>()?;
    let total_accesses = tenants.iter().map(|t| t.replayed).sum();

    Ok(ReplayReport {
        tenants,
        shards: service.contention(),
        threads,
        wall_ns,
        total_accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use molcache_core::{
        config::InitialAllocation, MolecularCache, MolecularConfig, ResizeTrigger,
    };
    use molcache_trace::tenants::tenant_traces;

    fn service(shards: usize) -> CacheService {
        CacheService::new(shards, |i| {
            let cfg = MolecularConfig::builder()
                .molecule_size(2048)
                .tile_molecules(16)
                .tiles_per_cluster(2)
                .clusters(1)
                .initial_allocation(InitialAllocation::Molecules(2))
                .trigger(ResizeTrigger::Constant { period: 10_000 })
                .seed(0xC0FFEE ^ i as u64)
                .build()
                .unwrap();
            MolecularCache::new(cfg)
        })
    }

    #[test]
    fn replay_accounts_for_every_access() {
        let traces = tenant_traces(3, 2_000, 11);
        let svc = service(2);
        let report = replay(&svc, &traces, ReplayOptions::default()).unwrap();
        assert_eq!(report.total_accesses, 6_000);
        assert_eq!(report.tenants.len(), 3);
        for (t, trace) in report.tenants.iter().zip(&traces) {
            assert_eq!(t.asid, trace.asid);
            assert_eq!(
                t.stats.accesses, 2_000,
                "all of {}'s traffic ran",
                t.benchmark
            );
        }
        let shard_total: u64 = report.shards.iter().map(|s| s.accesses).sum();
        assert_eq!(shard_total, 6_000);
    }

    #[test]
    fn thread_count_does_not_change_tenant_stats() {
        let traces = tenant_traces(4, 3_000, 23);
        let single = replay(
            &service(4),
            &traces,
            ReplayOptions {
                threads: 1,
                chunk: 128,
            },
        )
        .unwrap();
        let multi = replay(
            &service(4),
            &traces,
            ReplayOptions {
                threads: 3,
                chunk: 128,
            },
        )
        .unwrap();
        for (a, b) in single.tenants.iter().zip(&multi.tenants) {
            assert_eq!(a, b, "per-tenant stats must not depend on threads");
        }
    }
}
