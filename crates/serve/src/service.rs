//! The sharded cache service: shard-per-cluster locking, tenant
//! lifecycle, and the concurrent access path.
//!
//! Locking protocol (two locks, strict order admin → shard):
//!
//! * **Admin lock** — serializes lifecycle transitions (`admit`,
//!   `revoke`). Router slots are only written under it, so tenancy
//!   changes are totally ordered.
//! * **Shard locks** — one mutex per [`MolecularCache`] cluster. All
//!   cache state (tags, regions, statistics, memo table) lives under
//!   exactly one of them; accesses for tenants on different shards
//!   never contend.
//!
//! The revocation guarantee: `revoke` deactivates the router slot
//! (bumping the generation) and *then* acquires the victim's shard lock
//! to flush the region. The access path acquires the shard lock first
//! and validates the handle *after*. So an access that wins the lock
//! race before a concurrent revoke completes against the still-resident
//! region — a normal pre-revoke access — and every access that acquires
//! the lock afterwards sees the bumped generation and fails. Once
//! `revoke` returns, the shard lock has been cycled: no access can
//! succeed with the dead handle, and none can be mid-flight.
//!
//! Counters on the access path are relaxed atomics folded into
//! [`ShardContention`] records on demand; they observe the service
//! without perturbing it (contention is detected with a `try_lock`
//! fast path, so the uncontended case never reads a clock).

use crate::error::ServeError;
use crate::router::{TenantHandle, TenantRouter};
use molcache_core::MolecularCache;
use molcache_sim::{AppStats, BatchOutcome, CacheModel, Request};
use molcache_telemetry::ShardContention;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};
use std::time::Instant;

/// Atomic tallies for one shard's lock and traffic.
#[derive(Default)]
struct ShardCounters {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    lock_wait_ns: AtomicU64,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    accesses: AtomicU64,
    hits: AtomicU64,
}

struct ClusterShard {
    cache: Mutex<MolecularCache>,
    counters: ShardCounters,
}

/// Shard-lock guard that maintains the live queue-depth gauge.
struct ShardGuard<'a> {
    cache: MutexGuard<'a, MolecularCache>,
    counters: &'a ShardCounters,
}

impl Deref for ShardGuard<'_> {
    type Target = MolecularCache;
    fn deref(&self) -> &MolecularCache {
        &self.cache
    }
}

impl DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut MolecularCache {
        &mut self.cache
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        self.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Round-robin placement cursor, guarded by the admin lock.
struct AdminState {
    next_shard: usize,
}

/// A multi-tenant cache service: N independently locked molecular-cache
/// clusters plus the router mapping each admitted ASID to one of them.
pub struct CacheService {
    shards: Vec<ClusterShard>,
    router: TenantRouter,
    admin: Mutex<AdminState>,
}

impl CacheService {
    /// Builds a service of `shards` clusters; `make(i)` constructs the
    /// cache for shard `i` (callers vary seeds or geometry per shard).
    ///
    /// # Panics
    /// If `shards` is 0 or exceeds the router's 15-bit shard field.
    pub fn new(shards: usize, mut make: impl FnMut(usize) -> MolecularCache) -> Self {
        assert!(shards > 0, "a service needs at least one shard");
        assert!(shards <= 0x7FFF, "shard index must fit the router slot");
        CacheService {
            shards: (0..shards)
                .map(|i| ClusterShard {
                    cache: Mutex::new(make(i)),
                    counters: ShardCounters::default(),
                })
                .collect(),
            router: TenantRouter::new(),
            admin: Mutex::new(AdminState { next_shard: 0 }),
        }
    }

    /// Number of cluster shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn lock_shard(&self, shard: usize) -> ShardGuard<'_> {
        let s = &self.shards[shard];
        let c = &s.counters;
        c.acquisitions.fetch_add(1, Ordering::Relaxed);
        let depth = c.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        c.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        let cache = match s.cache.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                c.contended.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                let guard = s.cache.lock().expect("shard lock poisoned");
                c.lock_wait_ns
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                guard
            }
            Err(TryLockError::Poisoned(_)) => panic!("shard lock poisoned"),
        };
        ShardGuard { cache, counters: c }
    }

    /// Validates `handle` against the router; must be called while
    /// holding the handle's shard lock for the revocation guarantee to
    /// hold.
    fn check(&self, handle: &TenantHandle) -> Result<(), ServeError> {
        if self.router.validate(handle) {
            Ok(())
        } else {
            Err(ServeError::Revoked(handle.asid))
        }
    }

    /// Admits a tenant onto the next shard in round-robin order and
    /// creates its cache region. With `shards == tenants` this places
    /// every tenant alone on its own cluster.
    pub fn admit(&self, asid: molcache_trace::Asid) -> Result<TenantHandle, ServeError> {
        let mut admin = self.admin.lock().expect("admin lock poisoned");
        let shard = admin.next_shard;
        let handle = self.admit_locked(asid, shard)?;
        admin.next_shard = (admin.next_shard + 1) % self.shards.len();
        Ok(handle)
    }

    /// Admits a tenant onto a specific shard.
    pub fn admit_to(
        &self,
        asid: molcache_trace::Asid,
        shard: usize,
    ) -> Result<TenantHandle, ServeError> {
        if shard >= self.shards.len() {
            return Err(ServeError::UnknownShard {
                shard,
                shards: self.shards.len(),
            });
        }
        let _admin = self.admin.lock().expect("admin lock poisoned");
        self.admit_locked(asid, shard)
    }

    fn admit_locked(
        &self,
        asid: molcache_trace::Asid,
        shard: usize,
    ) -> Result<TenantHandle, ServeError> {
        if self.router.is_active(asid) {
            return Err(ServeError::AlreadyAdmitted(asid));
        }
        let token = self.router.activate(asid, shard);
        self.lock_shard(shard).admit_app(asid);
        Ok(TenantHandle { asid, shard, token })
    }

    /// Revokes a tenancy: invalidates every outstanding handle, then
    /// releases the tenant's region (flushing its dirty lines back).
    /// Returns the number of molecules the region held. After this
    /// returns, no access through any handle for this tenancy can
    /// succeed.
    pub fn revoke(&self, handle: &TenantHandle) -> Result<usize, ServeError> {
        let _admin = self.admin.lock().expect("admin lock poisoned");
        self.check(handle)?;
        self.router.deactivate(handle.asid);
        let mut cache = self.lock_shard(handle.shard);
        Ok(cache.release_region(handle.asid).unwrap_or(0))
    }

    /// Resizes the tenant's region toward `target` molecules (the free
    /// pool may satisfy growth only partially). Returns the resulting
    /// size.
    pub fn resize(&self, handle: &TenantHandle, target: usize) -> Result<usize, ServeError> {
        let mut cache = self.lock_shard(handle.shard);
        self.check(handle)?;
        Ok(cache
            .set_region_size(handle.asid, target)
            .expect("active tenancy implies a region"))
    }

    /// Flushes the tenant's cached data in place, keeping its capacity.
    /// Returns the dirty lines written back.
    pub fn evict(&self, handle: &TenantHandle) -> Result<u64, ServeError> {
        let mut cache = self.lock_shard(handle.shard);
        self.check(handle)?;
        Ok(cache
            .flush_region(handle.asid)
            .expect("active tenancy implies a region"))
    }

    /// Services one request for the tenant.
    pub fn access(
        &self,
        handle: &TenantHandle,
        req: Request,
    ) -> Result<molcache_sim::AccessOutcome, ServeError> {
        if req.asid != handle.asid {
            return Err(ServeError::AsidMismatch {
                handle: handle.asid,
                request: req.asid,
            });
        }
        let mut cache = self.lock_shard(handle.shard);
        self.check(handle)?;
        let out = cache.access(req);
        let c = &self.shards[handle.shard].counters;
        c.accesses.fetch_add(1, Ordering::Relaxed);
        c.hits.fetch_add(u64::from(out.hit), Ordering::Relaxed);
        Ok(out)
    }

    /// Services a batch of requests under one lock acquisition — the
    /// replay fast path. All requests must carry the handle's ASID.
    pub fn access_batch(
        &self,
        handle: &TenantHandle,
        reqs: &[Request],
    ) -> Result<BatchOutcome, ServeError> {
        if let Some(bad) = reqs.iter().find(|r| r.asid != handle.asid) {
            return Err(ServeError::AsidMismatch {
                handle: handle.asid,
                request: bad.asid,
            });
        }
        let mut cache = self.lock_shard(handle.shard);
        self.check(handle)?;
        let out = cache.access_batch(reqs);
        let c = &self.shards[handle.shard].counters;
        c.accesses.fetch_add(out.accesses, Ordering::Relaxed);
        c.hits.fetch_add(out.hits, Ordering::Relaxed);
        Ok(out)
    }

    /// The tenant's end-to-end statistics, as its shard's cache tracked
    /// them.
    pub fn tenant_stats(&self, handle: &TenantHandle) -> Result<AppStats, ServeError> {
        let cache = self.lock_shard(handle.shard);
        self.check(handle)?;
        Ok(cache.stats().app(handle.asid))
    }

    /// Current molecule count of the tenant's region.
    pub fn tenant_region_size(&self, handle: &TenantHandle) -> Result<usize, ServeError> {
        let cache = self.lock_shard(handle.shard);
        self.check(handle)?;
        Ok(cache
            .region_size(handle.asid)
            .expect("active tenancy implies a region"))
    }

    /// Runs `f` against one shard's cache under its lock — the
    /// inspection hook tests and renderers use.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&MolecularCache) -> R) -> R {
        f(&self.lock_shard(shard))
    }

    /// Installs a resize policy on one shard, making the service
    /// heterogeneous: each cluster can run its own goal-seeking scheme.
    /// Tenants already resident on the shard are re-registered with the
    /// new policy (its adaptation state starts fresh), so this is
    /// normally done between admission and traffic.
    pub fn set_shard_policy(
        &self,
        shard: usize,
        policy: Box<dyn molcache_core::ResizePolicy>,
    ) -> Result<(), ServeError> {
        if shard >= self.shards.len() {
            return Err(ServeError::UnknownShard {
                shard,
                shards: self.shards.len(),
            });
        }
        self.lock_shard(shard).set_resize_policy(policy);
        Ok(())
    }

    /// Stable name of the resize policy a shard currently runs.
    pub fn shard_policy_name(&self, shard: usize) -> Result<&'static str, ServeError> {
        if shard >= self.shards.len() {
            return Err(ServeError::UnknownShard {
                shard,
                shards: self.shards.len(),
            });
        }
        Ok(self.lock_shard(shard).resize_policy_name())
    }

    /// Adjusts the tenant's miss-rate goal at runtime (its per-tenant
    /// SLA). The shard's policy sees the new goal from the next resize
    /// window on. The goal must lie in `(0, 1)`.
    pub fn set_tenant_goal(&self, handle: &TenantHandle, goal: f64) -> Result<(), ServeError> {
        let mut cache = self.lock_shard(handle.shard);
        self.check(handle)?;
        if cache.set_region_goal(handle.asid, goal) {
            Ok(())
        } else {
            Err(ServeError::InvalidGoal(handle.asid))
        }
    }

    /// Snapshot of every shard's contention counters.
    pub fn contention(&self) -> Vec<ShardContention> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let c = &s.counters;
                ShardContention {
                    shard: i,
                    acquisitions: c.acquisitions.load(Ordering::Relaxed),
                    contended: c.contended.load(Ordering::Relaxed),
                    lock_wait_ns: c.lock_wait_ns.load(Ordering::Relaxed),
                    max_queue_depth: c.max_queue_depth.load(Ordering::Relaxed),
                    accesses: c.accesses.load(Ordering::Relaxed),
                    hits: c.hits.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Cross-shard load imbalance of the traffic serviced so far.
    pub fn imbalance(&self) -> f64 {
        molcache_telemetry::imbalance(&self.contention())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molcache_core::{config::InitialAllocation, MolecularConfig, ResizeTrigger};
    use molcache_trace::{AccessKind, Address, Asid};

    fn service(shards: usize) -> CacheService {
        CacheService::new(shards, |_| {
            let cfg = MolecularConfig::builder()
                .molecule_size(1024)
                .tile_molecules(8)
                .tiles_per_cluster(2)
                .clusters(1)
                .initial_allocation(InitialAllocation::Molecules(2))
                .trigger(ResizeTrigger::Constant { period: 1 << 30 })
                .build()
                .unwrap();
            MolecularCache::new(cfg)
        })
    }

    fn read(asid: Asid, addr: u64) -> Request {
        Request {
            asid,
            addr: Address::new(addr),
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn admit_routes_round_robin_and_rejects_duplicates() {
        let svc = service(2);
        let a = svc.admit(Asid::new(1)).unwrap();
        let b = svc.admit(Asid::new(2)).unwrap();
        let c = svc.admit(Asid::new(3)).unwrap();
        assert_eq!((a.shard(), b.shard(), c.shard()), (0, 1, 0));
        assert_eq!(
            svc.admit(Asid::new(1)),
            Err(ServeError::AlreadyAdmitted(Asid::new(1)))
        );
        assert_eq!(
            svc.admit_to(Asid::new(4), 9),
            Err(ServeError::UnknownShard {
                shard: 9,
                shards: 2
            })
        );
    }

    #[test]
    fn lifecycle_calls_fail_cleanly_after_revoke() {
        let svc = service(1);
        let h = svc.admit(Asid::new(1)).unwrap();
        svc.access(&h, read(Asid::new(1), 64)).unwrap();
        let released = svc.revoke(&h).unwrap();
        assert!(released > 0, "region gave back its molecules");

        let dead = Some(ServeError::Revoked(Asid::new(1)));
        assert_eq!(svc.access(&h, read(Asid::new(1), 64)).err(), dead);
        assert_eq!(svc.resize(&h, 4).err(), dead);
        assert_eq!(svc.evict(&h).err(), dead);
        assert_eq!(svc.revoke(&h).err(), dead);
        assert_eq!(svc.tenant_stats(&h).err(), dead);
    }

    #[test]
    fn readmitted_tenant_gets_fresh_handle_old_one_stays_dead() {
        let svc = service(1);
        let old = svc.admit(Asid::new(5)).unwrap();
        svc.revoke(&old).unwrap();
        let new = svc.admit(Asid::new(5)).unwrap();
        assert!(svc.access(&new, read(Asid::new(5), 0)).is_ok());
        assert_eq!(
            svc.access(&old, read(Asid::new(5), 0)).err(),
            Some(ServeError::Revoked(Asid::new(5)))
        );
    }

    #[test]
    fn asid_mismatch_is_rejected_before_touching_the_cache() {
        let svc = service(1);
        let h = svc.admit(Asid::new(1)).unwrap();
        let err = svc.access(&h, read(Asid::new(2), 0)).unwrap_err();
        assert_eq!(
            err,
            ServeError::AsidMismatch {
                handle: Asid::new(1),
                request: Asid::new(2)
            }
        );
        // The foreign ASID gained no region from the attempt.
        assert!(!svc.with_shard(0, |c| c.has_region(Asid::new(2))));
    }

    fn policy(name: &str) -> Box<dyn molcache_core::ResizePolicy> {
        let cfg = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(1)
            .build()
            .unwrap();
        molcache_core::policy::by_name(name, &cfg).unwrap()
    }

    #[test]
    fn shards_run_independent_policies() {
        let svc = service(2);
        assert_eq!(svc.shard_policy_name(0), Ok("paper-algorithm1"));
        svc.set_shard_policy(1, policy("memshare-pressure"))
            .unwrap();
        assert_eq!(svc.shard_policy_name(0), Ok("paper-algorithm1"));
        assert_eq!(svc.shard_policy_name(1), Ok("memshare-pressure"));
        assert_eq!(
            svc.set_shard_policy(7, policy("per-app-goal")),
            Err(ServeError::UnknownShard {
                shard: 7,
                shards: 2
            })
        );
        assert_eq!(
            svc.shard_policy_name(2),
            Err(ServeError::UnknownShard {
                shard: 2,
                shards: 2
            })
        );
    }

    #[test]
    fn tenant_goals_adjust_at_runtime() {
        let svc = service(1);
        let h = svc.admit(Asid::new(1)).unwrap();
        svc.set_tenant_goal(&h, 0.25).unwrap();
        assert_eq!(
            svc.set_tenant_goal(&h, 1.5),
            Err(ServeError::InvalidGoal(Asid::new(1)))
        );
        svc.revoke(&h).unwrap();
        assert_eq!(
            svc.set_tenant_goal(&h, 0.25),
            Err(ServeError::Revoked(Asid::new(1)))
        );
    }

    #[test]
    fn counters_tally_traffic_per_shard() {
        let svc = service(2);
        let a = svc.admit_to(Asid::new(1), 0).unwrap();
        let b = svc.admit_to(Asid::new(2), 1).unwrap();
        for i in 0..10 {
            svc.access(&a, read(Asid::new(1), i * 64)).unwrap();
        }
        svc.access(&b, read(Asid::new(2), 0)).unwrap();
        let shards = svc.contention();
        assert_eq!(shards[0].accesses, 10);
        assert_eq!(shards[1].accesses, 1);
        assert!(svc.imbalance() > 1.0);
    }
}
