//! # molcache-serve — sharded concurrent multi-tenant cache service
//!
//! The paper's molecular cache is a per-CMP structure: one cache, many
//! application regions, one access stream. A serving deployment has the
//! opposite shape — many OS threads pushing interleaved traffic from
//! many tenants into shared cache capacity. This crate bridges the two:
//! it shards capacity into N independent [`MolecularCache`] clusters,
//! each behind its own lock, and routes every tenant (ASID) to exactly
//! one shard through a dense lock-free router table.
//!
//! The pieces:
//!
//! * [`TenantRouter`] — one atomic word per ASID packing
//!   `active | shard | generation`. A [`TenantHandle`] captures the
//!   word at admission; any later lifecycle change (revoke, re-admit)
//!   bumps the generation, so stale handles fail validation instead of
//!   touching another tenant's region.
//! * [`CacheService`] — the lifecycle API (`admit` / `resize` / `evict`
//!   / `revoke`) plus the access path. Lifecycle calls serialize
//!   through an admin lock; accesses take only the owning shard's lock
//!   and validate the handle *after* acquiring it, which makes "no
//!   access succeeds after `revoke` returns" a hard guarantee.
//! * [`replay`] — multi-threaded trace replay partitioned by *shard*
//!   (never by tenant), so every shard's traffic is serviced by exactly
//!   one thread in a deterministic order and per-tenant statistics are
//!   bit-identical for any thread count.
//! * [`report`] — the `molcache-serve-v1` JSON document `molserve`
//!   emits and `molstat --serve` renders.
//!
//! Determinism is the design center: sharding is how the service scales
//! *and* how it stays reproducible. Two tenants in different shards
//! never interact (capacity, replacement, memoization are all per
//! shard); two tenants in the same shard interleave in a fixed
//! round-robin chunk order.

pub mod error;
pub mod replay;
pub mod report;
pub mod router;
pub mod service;

pub use error::ServeError;
pub use replay::{replay, ReplayOptions, ReplayReport, TenantReport};
pub use report::{ServeDoc, SERVE_SCHEMA};
pub use router::{TenantHandle, TenantRouter};
pub use service::CacheService;

pub use molcache_core::MolecularCache;
