//! Property-based tests (proptest) on the core invariants.

use molecular_caches::core::{
    InitialAllocation, MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger,
};
use molecular_caches::sim::replacement::{Policy, SetPolicy};
use molecular_caches::sim::{CacheConfig, CacheModel, Request, SetAssocCache};
use molecular_caches::trace::rng::Rng;
use molecular_caches::trace::{AccessKind, Address, Asid};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

fn arbitrary_trace(max_line: u64, len: usize) -> impl Strategy<Value = Vec<(u16, u64, bool)>> {
    proptest::collection::vec((1u16..4, 0u64..max_line, proptest::bool::ANY), 1..len)
}

/// A trivially-correct reference model of a set-associative LRU cache.
struct RefLru {
    sets: Vec<VecDeque<u64>>, // per set, line numbers in LRU order
    assoc: usize,
    line_size: u64,
}

impl RefLru {
    fn new(cfg: &CacheConfig) -> Self {
        RefLru {
            sets: vec![VecDeque::new(); cfg.num_sets() as usize],
            assoc: cfg.assoc() as usize,
            line_size: cfg.line_size(),
        }
    }

    fn access(&mut self, addr: Address) -> bool {
        let line = addr.raw() / self.line_size;
        let set = (line % self.sets.len() as u64) as usize;
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&l| l == line) {
            q.remove(pos);
            q.push_back(line);
            true
        } else {
            if q.len() == self.assoc {
                q.pop_front();
            }
            q.push_back(line);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production set-associative cache agrees hit-for-hit with the
    /// naive reference LRU on arbitrary traces.
    #[test]
    fn set_assoc_matches_reference_lru(trace in arbitrary_trace(512, 400)) {
        let cfg = CacheConfig::new(16 * 1024, 4, 64).unwrap();
        let mut cache = SetAssocCache::lru(cfg);
        let mut reference = RefLru::new(&cfg);
        for (asid, line, is_write) in trace {
            let addr = Address::new(line * 64);
            let req = Request {
                asid: Asid::new(asid),
                addr,
                kind: if is_write { AccessKind::Write } else { AccessKind::Read },
            };
            let got = cache.access(req).hit;
            let want = reference.access(addr);
            prop_assert_eq!(got, want, "divergence at line {}", line);
        }
    }

    /// Accesses = hits + misses, globally and per app, for any model.
    #[test]
    fn stats_are_conserved(trace in arbitrary_trace(4096, 300)) {
        let cfg = CacheConfig::new(32 * 1024, 2, 64).unwrap();
        let mut cache = SetAssocCache::lru(cfg);
        for (asid, line, is_write) in &trace {
            cache.access(Request {
                asid: Asid::new(*asid),
                addr: Address::new(line * 64),
                kind: if *is_write { AccessKind::Write } else { AccessKind::Read },
            });
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.global.accesses, trace.len() as u64);
        prop_assert_eq!(stats.global.hits + stats.global.misses, stats.global.accesses);
        let per_app_sum: u64 = stats.per_app.values().map(|s| s.accesses).sum();
        prop_assert_eq!(per_app_sum, stats.global.accesses);
    }

    /// Molecular-cache structural invariants hold under arbitrary traffic:
    /// allocated + free == total, regions are ASID-disjoint, and a region
    /// read-back after a write returns a hit (no lost lines while the
    /// region is stable).
    #[test]
    fn molecular_invariants(trace in arbitrary_trace(2048, 300)) {
        let config = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(8)
            .tiles_per_cluster(2)
            .clusters(2)
            .initial_allocation(InitialAllocation::Molecules(2))
            .trigger(ResizeTrigger::Constant { period: 64 })
            .policy(RegionPolicy::Randy)
            .build()
            .unwrap();
        let mut cache = MolecularCache::new(config);
        for (asid, line, is_write) in &trace {
            // Separate the apps' address spaces as real systems would.
            let addr = Address::new(((*asid as u64) << 36) + line * 64);
            cache.access(Request {
                asid: Asid::new(*asid),
                addr,
                kind: if *is_write { AccessKind::Write } else { AccessKind::Read },
            });
            let allocated: usize = cache.snapshots().iter().map(|s| s.molecules).sum();
            prop_assert!(allocated + cache.free_molecules() <= cache.config().total_molecules());
        }
        // Stats conservation for the molecular model too.
        let stats = cache.stats();
        prop_assert_eq!(stats.global.hits + stats.global.misses, stats.global.accesses);
    }

    /// Every replacement policy only ever returns in-range victims, and
    /// LRU/FIFO victims are unique until every way has been refilled.
    #[test]
    fn replacement_victims_in_range(ways in 1usize..16, draws in 1usize..64) {
        for policy in [Policy::Lru, Policy::Fifo, Policy::Random] {
            let mut p = SetPolicy::new(policy, ways);
            let mut rng = Rng::seeded(7);
            for w in 0..ways {
                p.on_fill(w);
            }
            for _ in 0..draws {
                let v = p.victim(&mut rng);
                prop_assert!(v < ways, "{policy:?} victim {v} out of range");
            }
        }
    }

    /// The deterministic RNG produces identical streams for equal seeds
    /// and (overwhelmingly) different streams for different seeds.
    #[test]
    fn rng_determinism(seed in proptest::num::u64::ANY) {
        let mut a = Rng::seeded(seed);
        let mut b = Rng::seeded(seed);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_eq!(va, vb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// din-format round trips preserve arbitrary access sequences.
    #[test]
    fn din_roundtrip(trace in proptest::collection::vec(
        (0u64..1 << 40, proptest::bool::ANY), 1..200)) {
        use molecular_caches::trace::din::{read_din, write_din};
        use molecular_caches::trace::MemAccess;
        let original: Vec<MemAccess> = trace
            .iter()
            .map(|(addr, w)| {
                if *w {
                    MemAccess::write(Asid::new(1), Address::new(*addr))
                } else {
                    MemAccess::read(Asid::new(1), Address::new(*addr))
                }
            })
            .collect();
        let mut bytes = Vec::new();
        write_din(&original, &mut bytes).unwrap();
        let parsed = read_din(std::io::Cursor::new(&bytes), Asid::new(1)).unwrap();
        prop_assert_eq!(parsed, original);
    }

    /// The molecular cache never stores the same line in two molecules of
    /// one region, for arbitrary traffic with block fills enabled.
    #[test]
    fn no_duplicate_lines_property(trace in proptest::collection::vec(
        (1u16..3, 0u64..512, proptest::bool::ANY), 1..400)) {
        let config = MolecularConfig::builder()
            .molecule_size(1024)
            .tile_molecules(4)
            .tiles_per_cluster(2)
            .clusters(1)
            .initial_allocation(InitialAllocation::Molecules(2))
            .app_line_factor(Asid::new(1), 2)
            .trigger(ResizeTrigger::Constant { period: 50 })
            .build()
            .unwrap();
        let mut cache = MolecularCache::new(config);
        for (asid, line, is_write) in &trace {
            let addr = Address::new(((*asid as u64) << 36) + line * 64);
            cache.access(Request {
                asid: Asid::new(*asid),
                addr,
                kind: if *is_write { AccessKind::Write } else { AccessKind::Read },
            });
        }
        prop_assert_eq!(cache.find_duplicate_line(), None);
    }

    /// `access_batch` is bit-identical to a loop of single `access` calls
    /// for arbitrary traffic and arbitrary batch boundaries: same hit/miss
    /// sequence totals, same latency, same stats, same region state.
    #[test]
    fn access_batch_matches_single_access_loop(
        trace in arbitrary_trace(512, 300),
        chunk in 1usize..48,
    ) {
        let build = || {
            let config = MolecularConfig::builder()
                .molecule_size(1024)
                .tile_molecules(8)
                .tiles_per_cluster(2)
                .clusters(2)
                .initial_allocation(InitialAllocation::Molecules(2))
                .trigger(ResizeTrigger::Constant { period: 64 })
                .policy(RegionPolicy::Randy)
                .seed(11)
                .build()
                .unwrap();
            MolecularCache::new(config)
        };
        let reqs: Vec<Request> = trace
            .iter()
            .map(|(asid, line, is_write)| Request {
                asid: Asid::new(*asid),
                addr: Address::new(((*asid as u64) << 36) + line * 64),
                kind: if *is_write { AccessKind::Write } else { AccessKind::Read },
            })
            .collect();

        let mut serial = build();
        let mut hits = 0u64;
        let mut latency = 0u64;
        for req in &reqs {
            let out = serial.access(*req);
            hits += u64::from(out.hit);
            latency += u64::from(out.latency);
        }

        let mut batched = build();
        let mut batch_hits = 0u64;
        let mut batch_latency = 0u64;
        for slice in reqs.chunks(chunk) {
            let out = batched.access_batch(slice);
            batch_hits += out.hits;
            batch_latency += out.total_latency;
        }

        prop_assert_eq!(hits, batch_hits);
        prop_assert_eq!(latency, batch_latency);
        prop_assert_eq!(serial.stats(), batched.stats());
        prop_assert_eq!(serial.snapshots(), batched.snapshots());
        prop_assert_eq!(serial.activity(), batched.activity());
    }
}

/// Interleaving granularity should not change totals, only interference:
/// the same two applications at quantum 1 vs quantum 10 000 see the same
/// access counts, and coarser quanta give the small application at least
/// as good a miss rate (its bursts keep its lines resident).
#[test]
fn quantum_interleaving_changes_interference_not_totals() {
    use molecular_caches::sim::cmp::run_accesses;
    use molecular_caches::trace::interleave::Workload;
    use molecular_caches::trace::presets::Benchmark;

    let run = |quantum: u64| {
        let sources = vec![
            Benchmark::Twolf.source(Asid::new(1), 3),
            Benchmark::Crc.source(Asid::new(2), 3),
        ];
        let workload = Workload::new(sources).unwrap();
        let mut cache = SetAssocCache::lru(CacheConfig::new(256 << 10, 4, 64).unwrap());
        if quantum == 1 {
            run_accesses(workload.round_robin(), &mut cache, 400_000)
        } else {
            run_accesses(workload.quantum(quantum), &mut cache, 400_000)
        }
    };
    let fine = run(1);
    let coarse = run(10_000);
    assert_eq!(fine.accesses(), coarse.accesses());
    let twolf_fine = fine.app_miss_rate(Asid::new(1));
    let twolf_coarse = coarse.app_miss_rate(Asid::new(1));
    assert!(
        twolf_coarse <= twolf_fine + 0.02,
        "coarse quanta must not hurt the small app: fine {twolf_fine:.3} coarse {twolf_coarse:.3}"
    );
}

/// Deterministic full-stack check outside proptest: same seed, same
/// experiment, bit-identical results.
#[test]
fn molecular_run_is_deterministic() {
    let run = || {
        let config = MolecularConfig::builder()
            .molecule_size(8 * 1024)
            .tile_molecules(16)
            .tiles_per_cluster(2)
            .clusters(1)
            .seed(99)
            .build()
            .unwrap();
        let mut cache = MolecularCache::new(config);
        let mut hits = HashMap::new();
        let mut src = molecular_caches::trace::presets::Benchmark::Gzip.source(Asid::new(1), 123);
        use molecular_caches::trace::gen::TraceSource;
        for _ in 0..50_000 {
            let acc = src.next_access().unwrap();
            let out = cache.access(Request::from(acc));
            *hits.entry(out.hit).or_insert(0u64) += 1;
        }
        (
            hits,
            cache.stats().global.misses,
            cache.activity().ways_probed,
            cache.snapshots().len(),
        )
    };
    assert_eq!(run(), run());
}
