//! Cross-crate plumbing: one trace, every cache model, plus the
//! L1-filter hierarchy and the power accounting on measured activity.

use molecular_caches::core::{InitialAllocation, MolecularCache, MolecularConfig};
use molecular_caches::power::accounting::EnergyMeter;
use molecular_caches::power::cacti::analyze;
use molecular_caches::power::calibrate::molecule_report;
use molecular_caches::power::tech::TechNode;
use molecular_caches::sim::cmp::{run_accesses, run_source};
use molecular_caches::sim::hierarchy::run_with_private_l1s;
use molecular_caches::sim::partition::{ColumnCache, ModifiedLruCache};
use molecular_caches::sim::{CacheConfig, CacheModel, Request, SetAssocCache};
use molecular_caches::trace::gen::{BoxedSource, TraceSource};
use molecular_caches::trace::presets::Benchmark;
use molecular_caches::trace::{Address, Asid};

fn recorded_trace(n: usize) -> Vec<molecular_caches::trace::MemAccess> {
    let mut src = Benchmark::Parser.source(Asid::new(1), 13);
    src.collect_n(n)
}

#[test]
fn same_trace_through_every_model() {
    let trace = recorded_trace(60_000);
    let mut results = Vec::new();

    let mut set_assoc = SetAssocCache::lru(CacheConfig::new(512 << 10, 4, 64).unwrap());
    results.push((
        set_assoc.describe(),
        run_accesses(trace.iter().copied(), &mut set_assoc, u64::MAX),
    ));

    let mut column = ColumnCache::new(CacheConfig::new(512 << 10, 4, 64).unwrap());
    results.push((
        column.describe(),
        run_accesses(trace.iter().copied(), &mut column, u64::MAX),
    ));

    let mut mlru = ModifiedLruCache::new(CacheConfig::new(512 << 10, 4, 64).unwrap());
    results.push((
        mlru.describe(),
        run_accesses(trace.iter().copied(), &mut mlru, u64::MAX),
    ));

    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(16)
        .tiles_per_cluster(4)
        .clusters(1)
        .build()
        .unwrap();
    let mut molecular = MolecularCache::new(config);
    results.push((
        molecular.describe(),
        run_accesses(trace.iter().copied(), &mut molecular, u64::MAX),
    ));

    for (desc, summary) in &results {
        assert_eq!(summary.accesses(), 60_000, "{desc} dropped accesses");
        let mr = summary.global.miss_rate();
        assert!(
            mr > 0.0 && mr < 0.9,
            "{desc}: implausible miss rate {mr:.3}"
        );
    }
    // Unrestricted single-app runs: all four models should land in a
    // broadly similar band for the same trace.
    let rates: Vec<f64> = results.iter().map(|(_, s)| s.global.miss_rate()).collect();
    let max = rates.iter().cloned().fold(f64::MIN, f64::max);
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max < min * 6.0 + 0.05,
        "models diverge too much on one trace: {rates:?}"
    );
}

#[test]
fn l1_filter_reduces_l2_pressure_for_all_models() {
    let mk_sources = || -> Vec<BoxedSource> {
        vec![
            Benchmark::Twolf.source(Asid::new(1), 13),
            Benchmark::Crafty.source(Asid::new(2), 13),
        ]
    };
    let mut l2 = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64).unwrap());
    let filtered = run_with_private_l1s(mk_sources(), None, &mut l2, 50_000).unwrap();
    // The L1-filtered L2 stream is mostly misses-of-L1, so the L2's own
    // miss rate is much higher than for the raw stream.
    let mut raw_l2 = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64).unwrap());
    let raw = molecular_caches::sim::cmp::run_shared(mk_sources(), &mut raw_l2, 50_000).unwrap();
    assert!(
        filtered.global.miss_rate() > raw.global.miss_rate(),
        "L1 filtering must concentrate misses: filtered {:.3} raw {:.3}",
        filtered.global.miss_rate(),
        raw.global.miss_rate()
    );
}

#[test]
fn coherence_directory_keeps_private_l1s_consistent() {
    use molecular_caches::sim::coherence::{CoherenceAction, CoreId, Directory, LineState};
    use molecular_caches::trace::AccessKind;

    // Two cores with private L1s sharing one line; the directory tells us
    // which copies to invalidate/downgrade, and applying those actions
    // keeps the L1 contents consistent with the directory's state.
    let l1_cfg = CacheConfig::new(16 << 10, 4, 64).unwrap();
    let mut l1 = [SetAssocCache::lru(l1_cfg), SetAssocCache::lru(l1_cfg)];
    let mut dir = Directory::new(64);
    let addr = Address::new(0x4_0000);
    let req = |kind| Request {
        asid: Asid::new(1),
        addr,
        kind,
    };

    let drive =
        |core: usize, kind: AccessKind, l1: &mut [SetAssocCache; 2], dir: &mut Directory| {
            let actions = dir.on_access(CoreId(core as u16), addr, kind, Asid::new(1));
            for action in actions {
                match action {
                    CoherenceAction::Invalidate(CoreId(c)) => {
                        l1[c as usize].invalidate(req(AccessKind::Read));
                    }
                    CoherenceAction::Downgrade(_) => {
                        // Data written back; the copy stays readable.
                    }
                }
            }
            l1[core].access(req(kind));
        };

    drive(0, AccessKind::Read, &mut l1, &mut dir);
    drive(1, AccessKind::Read, &mut l1, &mut dir);
    assert!(l1[0].probe(req(AccessKind::Read)));
    assert!(l1[1].probe(req(AccessKind::Read)));

    // Core 1 writes: core 0's copy must be invalidated.
    drive(1, AccessKind::Write, &mut l1, &mut dir);
    assert!(!l1[0].probe(req(AccessKind::Read)), "stale copy survived");
    assert!(l1[1].probe(req(AccessKind::Read)));
    assert_eq!(dir.state(CoreId(1), addr), LineState::Modified);
    assert_eq!(dir.state(CoreId(0), addr), LineState::Invalid);
    assert!(dir.invalidations() >= 1);
}

#[test]
fn measured_activity_prices_to_sane_power() {
    let node = TechNode::nm70();
    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(64)
        .tiles_per_cluster(4)
        .clusters(1)
        .initial_allocation(InitialAllocation::Molecules(16))
        .build()
        .unwrap();
    let mut cache = MolecularCache::new(config);
    // twolf's region settles comfortably inside one tile — the regime
    // the paper's selective-enablement power argument is about.
    run_source(
        Benchmark::Twolf.source(Asid::new(1), 13),
        &mut cache,
        600_000,
    );
    let meter = EnergyMeter::for_molecular(&molecule_report(&node), &node);
    let power = meter.power_at_mhz(&cache.activity(), 200.0);
    // One tile fully enabled would be ~5 W at 200 MHz; a single app
    // using part of one tile must be strictly less, and non-zero.
    assert!(
        power > 0.05 && power < 6.0,
        "implausible power {power:.2} W"
    );

    // Traditional comparison at the same frequency via its own meter.
    let trad_cfg = CacheConfig::new(2 << 20, 4, 64).unwrap().with_ports(4);
    let mut trad = SetAssocCache::lru(trad_cfg);
    run_source(
        Benchmark::Twolf.source(Asid::new(1), 13),
        &mut trad,
        600_000,
    );
    let trad_meter = EnergyMeter::for_traditional(&analyze(&trad_cfg, &node));
    let trad_power = trad_meter.power_at_mhz(&trad.activity(), 200.0);
    assert!(
        power < trad_power,
        "molecular {power:.2} W must undercut traditional {trad_power:.2} W"
    );
}
