//! Cross-crate integration: the paper's core phenomenon.
//!
//! Inter-application interference exists on a shared traditional cache
//! (Table 1) and disappears under molecular partitioning (§3.1).

use molecular_caches::core::{MolecularCache, MolecularConfig};
use molecular_caches::sim::cmp::{run_shared, run_source};
use molecular_caches::sim::{CacheConfig, SetAssocCache};
use molecular_caches::trace::presets::Benchmark;
use molecular_caches::trace::Asid;

const REFS: u64 = 400_000;

fn ammp_solo_miss_rate() -> f64 {
    let mut cache = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64).unwrap());
    let src = Benchmark::Ammp.source(Asid::new(1), 9);
    run_source(src, &mut cache, REFS / 2).app_miss_rate(Asid::new(1))
}

fn spec4_sources() -> Vec<molecular_caches::trace::gen::BoxedSource> {
    Benchmark::SPEC4
        .iter()
        .enumerate()
        .map(|(i, b)| b.source(Asid::new(i as u16 + 1), 9))
        .collect()
}

#[test]
fn shared_cache_inflates_small_apps() {
    let solo = ammp_solo_miss_rate();
    let mut shared = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64).unwrap());
    let summary = run_shared(spec4_sources(), &mut shared, REFS).unwrap();
    let ammp_shared = summary.app_miss_rate(Asid::new(2)); // ammp is 2nd in SPEC4
    assert!(
        ammp_shared > 3.0 * solo,
        "interference must inflate ammp: solo {solo:.4} shared {ammp_shared:.4}"
    );
}

#[test]
fn cache_hungry_neighbours_barely_affected() {
    // mcf misses heavily regardless of who it runs with (Table 1).
    let mut solo_cache = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64).unwrap());
    let solo = run_source(
        Benchmark::Mcf.source(Asid::new(1), 9),
        &mut solo_cache,
        REFS / 2,
    )
    .app_miss_rate(Asid::new(1));
    let mut shared = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64).unwrap());
    let summary = run_shared(spec4_sources(), &mut shared, REFS).unwrap();
    let shared_mr = summary.app_miss_rate(Asid::new(3)); // mcf is 3rd
    assert!(
        (shared_mr - solo).abs() < 0.12,
        "mcf should be shape-stable: solo {solo:.3} shared {shared_mr:.3}"
    );
    assert!(solo > 0.45, "mcf misses heavily even alone: {solo:.3}");
}

#[test]
fn molecular_regions_isolate_address_spaces() {
    // Two apps; the second thrashes. The first app's region must keep
    // servicing its hot set — no inter-application eviction is possible
    // because regions are ASID-exclusive.
    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(32)
        .tiles_per_cluster(4)
        .clusters(1)
        .miss_rate_goal(0.10)
        .build()
        .unwrap();
    let mut cache = MolecularCache::new(config);
    let sources = vec![
        Benchmark::Ammp.source(Asid::new(1), 9),
        Benchmark::Mcf.source(Asid::new(2), 9),
    ];
    let summary = run_shared(sources, &mut cache, REFS).unwrap();
    let ammp = summary.app_miss_rate(Asid::new(1));
    // ammp's region equilibrates near its goal instead of being wrecked
    // by mcf (solo-level would be ~0.01; goal-tracking may sit near 0.1).
    assert!(
        ammp < 0.2,
        "molecular isolation failed: ammp miss rate {ammp:.3}"
    );
    // And the regions never share molecules.
    let snaps = cache.snapshots();
    let total: usize = snaps.iter().map(|s| s.molecules).sum();
    assert!(total <= cache.config().total_molecules());
}
