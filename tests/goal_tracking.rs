//! Algorithm 1 end-to-end: partitions converge toward their goals.

use molecular_caches::core::{InitialAllocation, MolecularCache, MolecularConfig, ResizeTrigger};
use molecular_caches::sim::cmp::run_shared;
use molecular_caches::trace::presets::Benchmark;
use molecular_caches::trace::Asid;

#[test]
fn over_served_partition_shrinks_toward_goal() {
    // twolf's hot set fits in a handful of molecules. With a loose 25%
    // goal the resizer must withdraw molecules until the miss rate rises
    // toward the goal, freeing capacity.
    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(64)
        .tiles_per_cluster(4)
        .clusters(1)
        .miss_rate_goal(0.25)
        .trigger(ResizeTrigger::PerAppAdaptive {
            initial_period: 25_000,
        })
        .build()
        .unwrap();
    let mut cache = MolecularCache::new(config);
    run_shared(
        vec![Benchmark::Twolf.source(Asid::new(1), 5)],
        &mut cache,
        1_200_000,
    )
    .unwrap();
    let snap = cache.region_snapshot(Asid::new(1)).unwrap();
    assert!(
        snap.molecules < 32,
        "partition should have shrunk from the initial 32: {}",
        snap.molecules
    );
    assert!(cache.free_molecules() > 200, "freed molecules returned");
}

#[test]
fn under_served_partition_grows_toward_goal() {
    // gzip starting from 2 molecules with a tight goal must grow.
    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(64)
        .tiles_per_cluster(4)
        .clusters(1)
        .miss_rate_goal(0.15)
        .initial_allocation(InitialAllocation::Molecules(2))
        .trigger(ResizeTrigger::GlobalAdaptive {
            initial_period: 25_000,
        })
        .build()
        .unwrap();
    let mut cache = MolecularCache::new(config);
    run_shared(
        vec![Benchmark::Gzip.source(Asid::new(1), 5)],
        &mut cache,
        1_200_000,
    )
    .unwrap();
    let snap = cache.region_snapshot(Asid::new(1)).unwrap();
    assert!(
        snap.molecules > 8,
        "partition should have grown from 2: {}",
        snap.molecules
    );
    assert!(cache.resize_rounds() > 3);
}

#[test]
fn compulsory_thrasher_does_not_monopolize() {
    // CRC streams with no reuse: its partition must stop growing once
    // growth stops improving its miss rate, leaving room for others.
    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(64)
        .tiles_per_cluster(4)
        .clusters(1)
        .miss_rate_goal(0.10)
        .trigger(ResizeTrigger::GlobalAdaptive {
            initial_period: 25_000,
        })
        .build()
        .unwrap();
    let mut cache = MolecularCache::new(config);
    run_shared(
        vec![
            Benchmark::Crc.source(Asid::new(1), 5),
            Benchmark::Parser.source(Asid::new(2), 5),
        ],
        &mut cache,
        1_200_000,
    )
    .unwrap();
    let crc = cache.region_snapshot(Asid::new(1)).unwrap();
    let parser = cache.region_snapshot(Asid::new(2)).unwrap();
    let total = cache.config().total_molecules();
    // CRC converts molecules into only marginal hit gains (the paper's
    // "convex region" anomaly, §4/Figure 6), so it may accumulate a large
    // share — but the improvement gate must stop it short of starving the
    // reuse-heavy neighbour out of its goal.
    assert!(
        crc.molecules < total * 9 / 10,
        "CRC must not take the whole cache: {} of {total}",
        crc.molecules
    );
    assert!(
        parser.molecules >= 16,
        "parser must keep a working partition: {}",
        parser.molecules
    );
    assert!(
        parser.lifetime_miss_rate() < 0.25,
        "parser should be well served: {:.3}",
        parser.lifetime_miss_rate()
    );
}

#[test]
fn per_app_goals_are_honoured_independently() {
    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(64)
        .tiles_per_cluster(4)
        .clusters(1)
        .miss_rate_goal(0.30)
        .app_goal(Asid::new(1), 0.05)
        .trigger(ResizeTrigger::PerAppAdaptive {
            initial_period: 25_000,
        })
        .build()
        .unwrap();
    let mut cache = MolecularCache::new(config);
    run_shared(
        vec![
            Benchmark::Crafty.source(Asid::new(1), 5),
            Benchmark::Gap.source(Asid::new(2), 5),
        ],
        &mut cache,
        1_200_000,
    )
    .unwrap();
    let tight = cache.region_snapshot(Asid::new(1)).unwrap();
    let loose = cache.region_snapshot(Asid::new(2)).unwrap();
    assert_eq!(tight.goal, 0.05);
    assert_eq!(loose.goal, 0.30);
    // The tight-goal app gets the better miss rate.
    assert!(
        tight.lifetime_miss_rate() < loose.lifetime_miss_rate(),
        "tight {:.3} vs loose {:.3}",
        tight.lifetime_miss_rate(),
        loose.lifetime_miss_rate()
    );
}
