/root/repo/target/debug/deps/repro-949b9d73af23bace.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-949b9d73af23bace: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
