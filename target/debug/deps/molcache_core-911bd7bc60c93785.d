/root/repo/target/debug/deps/molcache_core-911bd7bc60c93785.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/molecule.rs crates/core/src/region.rs crates/core/src/region_table.rs crates/core/src/resize.rs crates/core/src/stats.rs crates/core/src/tile.rs Cargo.toml

/root/repo/target/debug/deps/libmolcache_core-911bd7bc60c93785.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/molecule.rs crates/core/src/region.rs crates/core/src/region_table.rs crates/core/src/resize.rs crates/core/src/stats.rs crates/core/src/tile.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/ids.rs:
crates/core/src/molecule.rs:
crates/core/src/region.rs:
crates/core/src/region_table.rs:
crates/core/src/resize.rs:
crates/core/src/stats.rs:
crates/core/src/tile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
