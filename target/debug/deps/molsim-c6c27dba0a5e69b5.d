/root/repo/target/debug/deps/molsim-c6c27dba0a5e69b5.d: crates/bench/src/bin/molsim.rs Cargo.toml

/root/repo/target/debug/deps/libmolsim-c6c27dba0a5e69b5.rmeta: crates/bench/src/bin/molsim.rs Cargo.toml

crates/bench/src/bin/molsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
