/root/repo/target/debug/deps/repro-d41c7f28ff5357d0.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-d41c7f28ff5357d0: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
