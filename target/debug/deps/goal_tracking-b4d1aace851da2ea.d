/root/repo/target/debug/deps/goal_tracking-b4d1aace851da2ea.d: tests/goal_tracking.rs

/root/repo/target/debug/deps/goal_tracking-b4d1aace851da2ea: tests/goal_tracking.rs

tests/goal_tracking.rs:
