/root/repo/target/debug/deps/molcache_metrics-d444c17d67a9c420.d: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/deviation.rs crates/metrics/src/hpm.rs crates/metrics/src/json.rs crates/metrics/src/power_deviation.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/molcache_metrics-d444c17d67a9c420: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/deviation.rs crates/metrics/src/hpm.rs crates/metrics/src/json.rs crates/metrics/src/power_deviation.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/chart.rs:
crates/metrics/src/deviation.rs:
crates/metrics/src/hpm.rs:
crates/metrics/src/json.rs:
crates/metrics/src/power_deviation.rs:
crates/metrics/src/record.rs:
crates/metrics/src/table.rs:
