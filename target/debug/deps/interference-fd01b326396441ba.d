/root/repo/target/debug/deps/interference-fd01b326396441ba.d: tests/interference.rs Cargo.toml

/root/repo/target/debug/deps/libinterference-fd01b326396441ba.rmeta: tests/interference.rs Cargo.toml

tests/interference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
