/root/repo/target/debug/deps/repro-1175050289427040.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-1175050289427040: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
