/root/repo/target/debug/deps/properties-0dd14ea04e37faf8.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0dd14ea04e37faf8.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
