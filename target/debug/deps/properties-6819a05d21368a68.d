/root/repo/target/debug/deps/properties-6819a05d21368a68.d: tests/properties.rs

/root/repo/target/debug/deps/properties-6819a05d21368a68: tests/properties.rs

tests/properties.rs:
