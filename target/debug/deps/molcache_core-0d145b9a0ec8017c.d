/root/repo/target/debug/deps/molcache_core-0d145b9a0ec8017c.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/molecule.rs crates/core/src/region.rs crates/core/src/region_table.rs crates/core/src/resize.rs crates/core/src/stats.rs crates/core/src/tile.rs

/root/repo/target/debug/deps/libmolcache_core-0d145b9a0ec8017c.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/molecule.rs crates/core/src/region.rs crates/core/src/region_table.rs crates/core/src/resize.rs crates/core/src/stats.rs crates/core/src/tile.rs

/root/repo/target/debug/deps/libmolcache_core-0d145b9a0ec8017c.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/molecule.rs crates/core/src/region.rs crates/core/src/region_table.rs crates/core/src/resize.rs crates/core/src/stats.rs crates/core/src/tile.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/ids.rs:
crates/core/src/molecule.rs:
crates/core/src/region.rs:
crates/core/src/region_table.rs:
crates/core/src/resize.rs:
crates/core/src/stats.rs:
crates/core/src/tile.rs:
