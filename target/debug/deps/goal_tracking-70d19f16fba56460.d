/root/repo/target/debug/deps/goal_tracking-70d19f16fba56460.d: tests/goal_tracking.rs Cargo.toml

/root/repo/target/debug/deps/libgoal_tracking-70d19f16fba56460.rmeta: tests/goal_tracking.rs Cargo.toml

tests/goal_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
