/root/repo/target/debug/deps/microbench-33f98ff06bd9a69d.d: crates/bench/benches/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-33f98ff06bd9a69d.rmeta: crates/bench/benches/microbench.rs Cargo.toml

crates/bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
