/root/repo/target/debug/deps/properties-1c8002ebc3adb107.d: tests/properties.rs

/root/repo/target/debug/deps/properties-1c8002ebc3adb107: tests/properties.rs

tests/properties.rs:
