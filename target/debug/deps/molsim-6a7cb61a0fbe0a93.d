/root/repo/target/debug/deps/molsim-6a7cb61a0fbe0a93.d: crates/bench/src/bin/molsim.rs Cargo.toml

/root/repo/target/debug/deps/libmolsim-6a7cb61a0fbe0a93.rmeta: crates/bench/src/bin/molsim.rs Cargo.toml

crates/bench/src/bin/molsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
