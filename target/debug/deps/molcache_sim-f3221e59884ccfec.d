/root/repo/target/debug/deps/molcache_sim-f3221e59884ccfec.d: crates/sim/src/lib.rs crates/sim/src/cmp.rs crates/sim/src/coherence.rs crates/sim/src/config.rs crates/sim/src/error.rs crates/sim/src/hierarchy.rs crates/sim/src/l1.rs crates/sim/src/model.rs crates/sim/src/partition.rs crates/sim/src/replacement.rs crates/sim/src/set_assoc.rs crates/sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmolcache_sim-f3221e59884ccfec.rmeta: crates/sim/src/lib.rs crates/sim/src/cmp.rs crates/sim/src/coherence.rs crates/sim/src/config.rs crates/sim/src/error.rs crates/sim/src/hierarchy.rs crates/sim/src/l1.rs crates/sim/src/model.rs crates/sim/src/partition.rs crates/sim/src/replacement.rs crates/sim/src/set_assoc.rs crates/sim/src/stats.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cmp.rs:
crates/sim/src/coherence.rs:
crates/sim/src/config.rs:
crates/sim/src/error.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/l1.rs:
crates/sim/src/model.rs:
crates/sim/src/partition.rs:
crates/sim/src/replacement.rs:
crates/sim/src/set_assoc.rs:
crates/sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
