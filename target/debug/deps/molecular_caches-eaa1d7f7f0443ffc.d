/root/repo/target/debug/deps/molecular_caches-eaa1d7f7f0443ffc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmolecular_caches-eaa1d7f7f0443ffc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
