/root/repo/target/debug/deps/molsim-ab1dc278edf4bfed.d: crates/bench/src/bin/molsim.rs

/root/repo/target/debug/deps/molsim-ab1dc278edf4bfed: crates/bench/src/bin/molsim.rs

crates/bench/src/bin/molsim.rs:
