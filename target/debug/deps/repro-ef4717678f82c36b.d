/root/repo/target/debug/deps/repro-ef4717678f82c36b.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-ef4717678f82c36b.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
