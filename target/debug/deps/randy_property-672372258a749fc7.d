/root/repo/target/debug/deps/randy_property-672372258a749fc7.d: crates/core/tests/randy_property.rs Cargo.toml

/root/repo/target/debug/deps/librandy_property-672372258a749fc7.rmeta: crates/core/tests/randy_property.rs Cargo.toml

crates/core/tests/randy_property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
