/root/repo/target/debug/deps/microbench-5de61de4d4851614.d: crates/bench/benches/microbench.rs Cargo.toml

/root/repo/target/debug/deps/libmicrobench-5de61de4d4851614.rmeta: crates/bench/benches/microbench.rs Cargo.toml

crates/bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
