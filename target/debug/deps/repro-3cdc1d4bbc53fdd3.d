/root/repo/target/debug/deps/repro-3cdc1d4bbc53fdd3.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-3cdc1d4bbc53fdd3.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
