/root/repo/target/debug/deps/interference-bc7c60f4e0ce60c2.d: tests/interference.rs

/root/repo/target/debug/deps/interference-bc7c60f4e0ce60c2: tests/interference.rs

tests/interference.rs:
