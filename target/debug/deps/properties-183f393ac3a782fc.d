/root/repo/target/debug/deps/properties-183f393ac3a782fc.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-183f393ac3a782fc.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
