/root/repo/target/debug/deps/interference-0ba9836ae77174fa.d: tests/interference.rs Cargo.toml

/root/repo/target/debug/deps/libinterference-0ba9836ae77174fa.rmeta: tests/interference.rs Cargo.toml

tests/interference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
