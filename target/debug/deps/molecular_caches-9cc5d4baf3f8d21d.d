/root/repo/target/debug/deps/molecular_caches-9cc5d4baf3f8d21d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmolecular_caches-9cc5d4baf3f8d21d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
