/root/repo/target/debug/deps/molsim-a8288967075d6ae3.d: crates/bench/src/bin/molsim.rs

/root/repo/target/debug/deps/molsim-a8288967075d6ae3: crates/bench/src/bin/molsim.rs

crates/bench/src/bin/molsim.rs:
