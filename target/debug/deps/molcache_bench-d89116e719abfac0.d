/root/repo/target/debug/deps/molcache_bench-d89116e719abfac0.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/harness.rs crates/bench/src/stopwatch.rs

/root/repo/target/debug/deps/libmolcache_bench-d89116e719abfac0.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/harness.rs crates/bench/src/stopwatch.rs

/root/repo/target/debug/deps/libmolcache_bench-d89116e719abfac0.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/harness.rs crates/bench/src/stopwatch.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table4.rs:
crates/bench/src/experiments/table5.rs:
crates/bench/src/harness.rs:
crates/bench/src/stopwatch.rs:
