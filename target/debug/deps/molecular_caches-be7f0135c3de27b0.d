/root/repo/target/debug/deps/molecular_caches-be7f0135c3de27b0.d: src/lib.rs

/root/repo/target/debug/deps/molecular_caches-be7f0135c3de27b0: src/lib.rs

src/lib.rs:
