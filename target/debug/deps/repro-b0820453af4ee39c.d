/root/repo/target/debug/deps/repro-b0820453af4ee39c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-b0820453af4ee39c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
