/root/repo/target/debug/deps/molcache_power-df0e7bd846249a17.d: crates/power/src/lib.rs crates/power/src/accounting.rs crates/power/src/cacti.rs crates/power/src/calibrate.rs crates/power/src/energy.rs crates/power/src/geometry.rs crates/power/src/leakage.rs crates/power/src/tech.rs crates/power/src/timing.rs

/root/repo/target/debug/deps/libmolcache_power-df0e7bd846249a17.rlib: crates/power/src/lib.rs crates/power/src/accounting.rs crates/power/src/cacti.rs crates/power/src/calibrate.rs crates/power/src/energy.rs crates/power/src/geometry.rs crates/power/src/leakage.rs crates/power/src/tech.rs crates/power/src/timing.rs

/root/repo/target/debug/deps/libmolcache_power-df0e7bd846249a17.rmeta: crates/power/src/lib.rs crates/power/src/accounting.rs crates/power/src/cacti.rs crates/power/src/calibrate.rs crates/power/src/energy.rs crates/power/src/geometry.rs crates/power/src/leakage.rs crates/power/src/tech.rs crates/power/src/timing.rs

crates/power/src/lib.rs:
crates/power/src/accounting.rs:
crates/power/src/cacti.rs:
crates/power/src/calibrate.rs:
crates/power/src/energy.rs:
crates/power/src/geometry.rs:
crates/power/src/leakage.rs:
crates/power/src/tech.rs:
crates/power/src/timing.rs:
