/root/repo/target/debug/deps/molstat-b3ae1c9e142effc1.d: crates/bench/src/bin/molstat.rs Cargo.toml

/root/repo/target/debug/deps/libmolstat-b3ae1c9e142effc1.rmeta: crates/bench/src/bin/molstat.rs Cargo.toml

crates/bench/src/bin/molstat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
