/root/repo/target/debug/deps/randy_property-f6806daac2ceef37.d: crates/core/tests/randy_property.rs

/root/repo/target/debug/deps/randy_property-f6806daac2ceef37: crates/core/tests/randy_property.rs

crates/core/tests/randy_property.rs:
