/root/repo/target/debug/deps/interference-6cf7bc13298421d8.d: tests/interference.rs

/root/repo/target/debug/deps/interference-6cf7bc13298421d8: tests/interference.rs

tests/interference.rs:
