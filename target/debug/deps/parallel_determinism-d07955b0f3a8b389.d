/root/repo/target/debug/deps/parallel_determinism-d07955b0f3a8b389.d: crates/bench/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-d07955b0f3a8b389: crates/bench/tests/parallel_determinism.rs

crates/bench/tests/parallel_determinism.rs:
