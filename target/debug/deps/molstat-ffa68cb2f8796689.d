/root/repo/target/debug/deps/molstat-ffa68cb2f8796689.d: crates/bench/src/bin/molstat.rs Cargo.toml

/root/repo/target/debug/deps/libmolstat-ffa68cb2f8796689.rmeta: crates/bench/src/bin/molstat.rs Cargo.toml

crates/bench/src/bin/molstat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
