/root/repo/target/debug/deps/goal_tracking-dee810a876ca1c0d.d: tests/goal_tracking.rs

/root/repo/target/debug/deps/goal_tracking-dee810a876ca1c0d: tests/goal_tracking.rs

tests/goal_tracking.rs:
