/root/repo/target/debug/deps/molecular_caches-0d01a8bd63eb1ed1.d: src/lib.rs

/root/repo/target/debug/deps/libmolecular_caches-0d01a8bd63eb1ed1.rlib: src/lib.rs

/root/repo/target/debug/deps/libmolecular_caches-0d01a8bd63eb1ed1.rmeta: src/lib.rs

src/lib.rs:
