/root/repo/target/debug/deps/baselines-2666c9a1d018580d.d: crates/sim/tests/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-2666c9a1d018580d.rmeta: crates/sim/tests/baselines.rs Cargo.toml

crates/sim/tests/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
