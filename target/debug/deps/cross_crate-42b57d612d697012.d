/root/repo/target/debug/deps/cross_crate-42b57d612d697012.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-42b57d612d697012: tests/cross_crate.rs

tests/cross_crate.rs:
