/root/repo/target/debug/deps/baselines-ec38129dd3293360.d: crates/sim/tests/baselines.rs

/root/repo/target/debug/deps/baselines-ec38129dd3293360: crates/sim/tests/baselines.rs

crates/sim/tests/baselines.rs:
