/root/repo/target/debug/deps/molcache_bench-217564135cf369a2.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/harness.rs crates/bench/src/stopwatch.rs Cargo.toml

/root/repo/target/debug/deps/libmolcache_bench-217564135cf369a2.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/table5.rs crates/bench/src/harness.rs crates/bench/src/stopwatch.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table4.rs:
crates/bench/src/experiments/table5.rs:
crates/bench/src/harness.rs:
crates/bench/src/stopwatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
