/root/repo/target/debug/deps/molstat-906c3658f1b9e6c7.d: crates/bench/src/bin/molstat.rs

/root/repo/target/debug/deps/molstat-906c3658f1b9e6c7: crates/bench/src/bin/molstat.rs

crates/bench/src/bin/molstat.rs:
