/root/repo/target/debug/deps/cross_crate-acfa198e188c474d.d: tests/cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libcross_crate-acfa198e188c474d.rmeta: tests/cross_crate.rs Cargo.toml

tests/cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
