/root/repo/target/debug/deps/cross_crate-cee0d607e71fc758.d: tests/cross_crate.rs

/root/repo/target/debug/deps/cross_crate-cee0d607e71fc758: tests/cross_crate.rs

tests/cross_crate.rs:
