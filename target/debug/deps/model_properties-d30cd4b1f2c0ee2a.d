/root/repo/target/debug/deps/model_properties-d30cd4b1f2c0ee2a.d: crates/power/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-d30cd4b1f2c0ee2a: crates/power/tests/model_properties.rs

crates/power/tests/model_properties.rs:
