/root/repo/target/debug/deps/randy_property-c5b198a1ce8730ea.d: crates/core/tests/randy_property.rs

/root/repo/target/debug/deps/randy_property-c5b198a1ce8730ea: crates/core/tests/randy_property.rs

crates/core/tests/randy_property.rs:
