/root/repo/target/debug/deps/molcache_telemetry-00062dd8694832af.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/hist.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sink.rs

/root/repo/target/debug/deps/libmolcache_telemetry-00062dd8694832af.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/hist.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sink.rs

/root/repo/target/debug/deps/libmolcache_telemetry-00062dd8694832af.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/hist.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sink.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/hist.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/sink.rs:
