/root/repo/target/debug/deps/molsim-9e9cddf35a09c49c.d: crates/bench/src/bin/molsim.rs

/root/repo/target/debug/deps/molsim-9e9cddf35a09c49c: crates/bench/src/bin/molsim.rs

crates/bench/src/bin/molsim.rs:
