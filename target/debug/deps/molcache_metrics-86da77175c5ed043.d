/root/repo/target/debug/deps/molcache_metrics-86da77175c5ed043.d: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/deviation.rs crates/metrics/src/hpm.rs crates/metrics/src/json.rs crates/metrics/src/power_deviation.rs crates/metrics/src/record.rs crates/metrics/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libmolcache_metrics-86da77175c5ed043.rmeta: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/deviation.rs crates/metrics/src/hpm.rs crates/metrics/src/json.rs crates/metrics/src/power_deviation.rs crates/metrics/src/record.rs crates/metrics/src/table.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/chart.rs:
crates/metrics/src/deviation.rs:
crates/metrics/src/hpm.rs:
crates/metrics/src/json.rs:
crates/metrics/src/power_deviation.rs:
crates/metrics/src/record.rs:
crates/metrics/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
