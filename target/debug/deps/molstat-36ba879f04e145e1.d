/root/repo/target/debug/deps/molstat-36ba879f04e145e1.d: crates/bench/src/bin/molstat.rs

/root/repo/target/debug/deps/molstat-36ba879f04e145e1: crates/bench/src/bin/molstat.rs

crates/bench/src/bin/molstat.rs:
