/root/repo/target/debug/deps/parallel_determinism-a9e610970e44fd3e.d: crates/bench/tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-a9e610970e44fd3e: crates/bench/tests/parallel_determinism.rs

crates/bench/tests/parallel_determinism.rs:
