/root/repo/target/debug/deps/goal_tracking-84d422ef78a22fc6.d: tests/goal_tracking.rs Cargo.toml

/root/repo/target/debug/deps/libgoal_tracking-84d422ef78a22fc6.rmeta: tests/goal_tracking.rs Cargo.toml

tests/goal_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
