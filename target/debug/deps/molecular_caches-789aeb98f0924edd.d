/root/repo/target/debug/deps/molecular_caches-789aeb98f0924edd.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmolecular_caches-789aeb98f0924edd.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
