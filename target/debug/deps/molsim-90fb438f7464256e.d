/root/repo/target/debug/deps/molsim-90fb438f7464256e.d: crates/bench/src/bin/molsim.rs

/root/repo/target/debug/deps/molsim-90fb438f7464256e: crates/bench/src/bin/molsim.rs

crates/bench/src/bin/molsim.rs:
