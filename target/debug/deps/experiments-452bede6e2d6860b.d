/root/repo/target/debug/deps/experiments-452bede6e2d6860b.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-452bede6e2d6860b.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
