/root/repo/target/debug/deps/molecular_caches-a73b3ce5d9703b59.d: src/lib.rs

/root/repo/target/debug/deps/libmolecular_caches-a73b3ce5d9703b59.rlib: src/lib.rs

/root/repo/target/debug/deps/libmolecular_caches-a73b3ce5d9703b59.rmeta: src/lib.rs

src/lib.rs:
