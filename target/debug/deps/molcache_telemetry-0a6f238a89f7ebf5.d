/root/repo/target/debug/deps/molcache_telemetry-0a6f238a89f7ebf5.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/hist.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libmolcache_telemetry-0a6f238a89f7ebf5.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/hist.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sink.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/hist.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
