/root/repo/target/debug/deps/molcache_core-856e3b02cb7e5d4b.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/molecule.rs crates/core/src/region.rs crates/core/src/region_table.rs crates/core/src/resize.rs crates/core/src/stats.rs crates/core/src/tile.rs

/root/repo/target/debug/deps/molcache_core-856e3b02cb7e5d4b: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/molecule.rs crates/core/src/region.rs crates/core/src/region_table.rs crates/core/src/resize.rs crates/core/src/stats.rs crates/core/src/tile.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/ids.rs:
crates/core/src/molecule.rs:
crates/core/src/region.rs:
crates/core/src/region_table.rs:
crates/core/src/resize.rs:
crates/core/src/stats.rs:
crates/core/src/tile.rs:
