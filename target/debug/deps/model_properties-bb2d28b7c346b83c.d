/root/repo/target/debug/deps/model_properties-bb2d28b7c346b83c.d: crates/power/tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-bb2d28b7c346b83c.rmeta: crates/power/tests/model_properties.rs Cargo.toml

crates/power/tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
