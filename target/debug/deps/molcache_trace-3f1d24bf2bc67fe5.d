/root/repo/target/debug/deps/molcache_trace-3f1d24bf2bc67fe5.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/din.rs crates/trace/src/dist.rs crates/trace/src/error.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/loopgen.rs crates/trace/src/gen/mix.rs crates/trace/src/gen/phased.rs crates/trace/src/gen/pointer_chase.rs crates/trace/src/gen/reuse.rs crates/trace/src/gen/stride.rs crates/trace/src/gen/working_set.rs crates/trace/src/interleave.rs crates/trace/src/presets.rs crates/trace/src/rng.rs crates/trace/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmolcache_trace-3f1d24bf2bc67fe5.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/din.rs crates/trace/src/dist.rs crates/trace/src/error.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/loopgen.rs crates/trace/src/gen/mix.rs crates/trace/src/gen/phased.rs crates/trace/src/gen/pointer_chase.rs crates/trace/src/gen/reuse.rs crates/trace/src/gen/stride.rs crates/trace/src/gen/working_set.rs crates/trace/src/interleave.rs crates/trace/src/presets.rs crates/trace/src/rng.rs crates/trace/src/stats.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/addr.rs:
crates/trace/src/din.rs:
crates/trace/src/dist.rs:
crates/trace/src/error.rs:
crates/trace/src/gen/mod.rs:
crates/trace/src/gen/loopgen.rs:
crates/trace/src/gen/mix.rs:
crates/trace/src/gen/phased.rs:
crates/trace/src/gen/pointer_chase.rs:
crates/trace/src/gen/reuse.rs:
crates/trace/src/gen/stride.rs:
crates/trace/src/gen/working_set.rs:
crates/trace/src/interleave.rs:
crates/trace/src/presets.rs:
crates/trace/src/rng.rs:
crates/trace/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
