/root/repo/target/debug/deps/molcache_telemetry-9b4b4f86eec3fafb.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/hist.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sink.rs

/root/repo/target/debug/deps/molcache_telemetry-9b4b4f86eec3fafb: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/hist.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sink.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/hist.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/sink.rs:
