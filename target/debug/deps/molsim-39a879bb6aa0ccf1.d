/root/repo/target/debug/deps/molsim-39a879bb6aa0ccf1.d: crates/bench/src/bin/molsim.rs Cargo.toml

/root/repo/target/debug/deps/libmolsim-39a879bb6aa0ccf1.rmeta: crates/bench/src/bin/molsim.rs Cargo.toml

crates/bench/src/bin/molsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
