/root/repo/target/debug/deps/molecular_caches-6faa64fefebbf6ef.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmolecular_caches-6faa64fefebbf6ef.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
