/root/repo/target/debug/deps/molcache_power-56371c4ab11c1190.d: crates/power/src/lib.rs crates/power/src/accounting.rs crates/power/src/cacti.rs crates/power/src/calibrate.rs crates/power/src/energy.rs crates/power/src/geometry.rs crates/power/src/leakage.rs crates/power/src/tech.rs crates/power/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libmolcache_power-56371c4ab11c1190.rmeta: crates/power/src/lib.rs crates/power/src/accounting.rs crates/power/src/cacti.rs crates/power/src/calibrate.rs crates/power/src/energy.rs crates/power/src/geometry.rs crates/power/src/leakage.rs crates/power/src/tech.rs crates/power/src/timing.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/accounting.rs:
crates/power/src/cacti.rs:
crates/power/src/calibrate.rs:
crates/power/src/energy.rs:
crates/power/src/geometry.rs:
crates/power/src/leakage.rs:
crates/power/src/tech.rs:
crates/power/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
