/root/repo/target/debug/deps/molcache_power-022388db946f80d9.d: crates/power/src/lib.rs crates/power/src/accounting.rs crates/power/src/cacti.rs crates/power/src/calibrate.rs crates/power/src/energy.rs crates/power/src/geometry.rs crates/power/src/leakage.rs crates/power/src/tech.rs crates/power/src/timing.rs

/root/repo/target/debug/deps/molcache_power-022388db946f80d9: crates/power/src/lib.rs crates/power/src/accounting.rs crates/power/src/cacti.rs crates/power/src/calibrate.rs crates/power/src/energy.rs crates/power/src/geometry.rs crates/power/src/leakage.rs crates/power/src/tech.rs crates/power/src/timing.rs

crates/power/src/lib.rs:
crates/power/src/accounting.rs:
crates/power/src/cacti.rs:
crates/power/src/calibrate.rs:
crates/power/src/energy.rs:
crates/power/src/geometry.rs:
crates/power/src/leakage.rs:
crates/power/src/tech.rs:
crates/power/src/timing.rs:
