/root/repo/target/debug/deps/molecular_caches-d5f17d0b9efbc7d2.d: src/lib.rs

/root/repo/target/debug/deps/molecular_caches-d5f17d0b9efbc7d2: src/lib.rs

src/lib.rs:
