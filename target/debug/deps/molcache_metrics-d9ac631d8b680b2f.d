/root/repo/target/debug/deps/molcache_metrics-d9ac631d8b680b2f.d: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/deviation.rs crates/metrics/src/hpm.rs crates/metrics/src/json.rs crates/metrics/src/power_deviation.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/libmolcache_metrics-d9ac631d8b680b2f.rlib: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/deviation.rs crates/metrics/src/hpm.rs crates/metrics/src/json.rs crates/metrics/src/power_deviation.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/libmolcache_metrics-d9ac631d8b680b2f.rmeta: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/deviation.rs crates/metrics/src/hpm.rs crates/metrics/src/json.rs crates/metrics/src/power_deviation.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/chart.rs:
crates/metrics/src/deviation.rs:
crates/metrics/src/hpm.rs:
crates/metrics/src/json.rs:
crates/metrics/src/power_deviation.rs:
crates/metrics/src/record.rs:
crates/metrics/src/table.rs:
