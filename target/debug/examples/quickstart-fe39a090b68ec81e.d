/root/repo/target/debug/examples/quickstart-fe39a090b68ec81e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fe39a090b68ec81e: examples/quickstart.rs

examples/quickstart.rs:
