/root/repo/target/debug/examples/power_budget-dfd8f41d278f67fc.d: examples/power_budget.rs

/root/repo/target/debug/examples/power_budget-dfd8f41d278f67fc: examples/power_budget.rs

examples/power_budget.rs:
