/root/repo/target/debug/examples/mixed_workload-7cc5fbad688e9b65.d: examples/mixed_workload.rs Cargo.toml

/root/repo/target/debug/examples/libmixed_workload-7cc5fbad688e9b65.rmeta: examples/mixed_workload.rs Cargo.toml

examples/mixed_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
