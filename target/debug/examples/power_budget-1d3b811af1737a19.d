/root/repo/target/debug/examples/power_budget-1d3b811af1737a19.d: examples/power_budget.rs Cargo.toml

/root/repo/target/debug/examples/libpower_budget-1d3b811af1737a19.rmeta: examples/power_budget.rs Cargo.toml

examples/power_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
