/root/repo/target/debug/examples/qos_partitioning-fe5f27c32e910155.d: examples/qos_partitioning.rs

/root/repo/target/debug/examples/qos_partitioning-fe5f27c32e910155: examples/qos_partitioning.rs

examples/qos_partitioning.rs:
