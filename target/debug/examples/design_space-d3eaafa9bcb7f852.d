/root/repo/target/debug/examples/design_space-d3eaafa9bcb7f852.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-d3eaafa9bcb7f852: examples/design_space.rs

examples/design_space.rs:
