/root/repo/target/debug/examples/resize_dynamics-0eda6aeaf82b3af7.d: examples/resize_dynamics.rs Cargo.toml

/root/repo/target/debug/examples/libresize_dynamics-0eda6aeaf82b3af7.rmeta: examples/resize_dynamics.rs Cargo.toml

examples/resize_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
