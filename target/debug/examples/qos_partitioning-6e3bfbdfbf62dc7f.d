/root/repo/target/debug/examples/qos_partitioning-6e3bfbdfbf62dc7f.d: examples/qos_partitioning.rs Cargo.toml

/root/repo/target/debug/examples/libqos_partitioning-6e3bfbdfbf62dc7f.rmeta: examples/qos_partitioning.rs Cargo.toml

examples/qos_partitioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
