/root/repo/target/debug/examples/model_report-3e22738a52b26ed8.d: crates/power/examples/model_report.rs Cargo.toml

/root/repo/target/debug/examples/libmodel_report-3e22738a52b26ed8.rmeta: crates/power/examples/model_report.rs Cargo.toml

crates/power/examples/model_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
