/root/repo/target/debug/examples/mixed_workload-321791bb5b9941bf.d: examples/mixed_workload.rs

/root/repo/target/debug/examples/mixed_workload-321791bb5b9941bf: examples/mixed_workload.rs

examples/mixed_workload.rs:
