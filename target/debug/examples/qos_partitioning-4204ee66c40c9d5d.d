/root/repo/target/debug/examples/qos_partitioning-4204ee66c40c9d5d.d: examples/qos_partitioning.rs Cargo.toml

/root/repo/target/debug/examples/libqos_partitioning-4204ee66c40c9d5d.rmeta: examples/qos_partitioning.rs Cargo.toml

examples/qos_partitioning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
