/root/repo/target/debug/examples/resize_dynamics-9849e215ef910d4c.d: examples/resize_dynamics.rs

/root/repo/target/debug/examples/resize_dynamics-9849e215ef910d4c: examples/resize_dynamics.rs

examples/resize_dynamics.rs:
