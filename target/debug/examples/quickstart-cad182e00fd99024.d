/root/repo/target/debug/examples/quickstart-cad182e00fd99024.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-cad182e00fd99024.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
