/root/repo/target/debug/examples/design_space-b7d71f62472475a7.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-b7d71f62472475a7: examples/design_space.rs

examples/design_space.rs:
