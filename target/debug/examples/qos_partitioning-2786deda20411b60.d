/root/repo/target/debug/examples/qos_partitioning-2786deda20411b60.d: examples/qos_partitioning.rs

/root/repo/target/debug/examples/qos_partitioning-2786deda20411b60: examples/qos_partitioning.rs

examples/qos_partitioning.rs:
