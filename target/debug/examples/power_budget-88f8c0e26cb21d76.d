/root/repo/target/debug/examples/power_budget-88f8c0e26cb21d76.d: examples/power_budget.rs

/root/repo/target/debug/examples/power_budget-88f8c0e26cb21d76: examples/power_budget.rs

examples/power_budget.rs:
