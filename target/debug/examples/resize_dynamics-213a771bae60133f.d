/root/repo/target/debug/examples/resize_dynamics-213a771bae60133f.d: examples/resize_dynamics.rs

/root/repo/target/debug/examples/resize_dynamics-213a771bae60133f: examples/resize_dynamics.rs

examples/resize_dynamics.rs:
