/root/repo/target/debug/examples/mixed_workload-75651bced9dfadb6.d: examples/mixed_workload.rs

/root/repo/target/debug/examples/mixed_workload-75651bced9dfadb6: examples/mixed_workload.rs

examples/mixed_workload.rs:
