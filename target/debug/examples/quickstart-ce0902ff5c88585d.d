/root/repo/target/debug/examples/quickstart-ce0902ff5c88585d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ce0902ff5c88585d: examples/quickstart.rs

examples/quickstart.rs:
