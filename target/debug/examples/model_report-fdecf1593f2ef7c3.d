/root/repo/target/debug/examples/model_report-fdecf1593f2ef7c3.d: crates/power/examples/model_report.rs

/root/repo/target/debug/examples/model_report-fdecf1593f2ef7c3: crates/power/examples/model_report.rs

crates/power/examples/model_report.rs:
