/root/repo/target/debug/examples/power_budget-44c4c3e1aa2456a2.d: examples/power_budget.rs Cargo.toml

/root/repo/target/debug/examples/libpower_budget-44c4c3e1aa2456a2.rmeta: examples/power_budget.rs Cargo.toml

examples/power_budget.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
