/root/repo/target/release/deps/molcache_telemetry-20d2ef58b7df27fb.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/hist.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sink.rs

/root/repo/target/release/deps/libmolcache_telemetry-20d2ef58b7df27fb.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/hist.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sink.rs

/root/repo/target/release/deps/libmolcache_telemetry-20d2ef58b7df27fb.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/hist.rs crates/telemetry/src/recorder.rs crates/telemetry/src/sink.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/hist.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/sink.rs:
