/root/repo/target/release/deps/molcache_metrics-8d8adc5cc1c7379f.d: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/deviation.rs crates/metrics/src/hpm.rs crates/metrics/src/json.rs crates/metrics/src/power_deviation.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/libmolcache_metrics-8d8adc5cc1c7379f.rlib: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/deviation.rs crates/metrics/src/hpm.rs crates/metrics/src/json.rs crates/metrics/src/power_deviation.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/libmolcache_metrics-8d8adc5cc1c7379f.rmeta: crates/metrics/src/lib.rs crates/metrics/src/chart.rs crates/metrics/src/deviation.rs crates/metrics/src/hpm.rs crates/metrics/src/json.rs crates/metrics/src/power_deviation.rs crates/metrics/src/record.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/chart.rs:
crates/metrics/src/deviation.rs:
crates/metrics/src/hpm.rs:
crates/metrics/src/json.rs:
crates/metrics/src/power_deviation.rs:
crates/metrics/src/record.rs:
crates/metrics/src/table.rs:
