/root/repo/target/release/deps/molcache_core-9c723a815ba3d2e0.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/molecule.rs crates/core/src/region.rs crates/core/src/region_table.rs crates/core/src/resize.rs crates/core/src/stats.rs crates/core/src/tile.rs

/root/repo/target/release/deps/libmolcache_core-9c723a815ba3d2e0.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/molecule.rs crates/core/src/region.rs crates/core/src/region_table.rs crates/core/src/resize.rs crates/core/src/stats.rs crates/core/src/tile.rs

/root/repo/target/release/deps/libmolcache_core-9c723a815ba3d2e0.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/config.rs crates/core/src/error.rs crates/core/src/ids.rs crates/core/src/molecule.rs crates/core/src/region.rs crates/core/src/region_table.rs crates/core/src/resize.rs crates/core/src/stats.rs crates/core/src/tile.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/config.rs:
crates/core/src/error.rs:
crates/core/src/ids.rs:
crates/core/src/molecule.rs:
crates/core/src/region.rs:
crates/core/src/region_table.rs:
crates/core/src/resize.rs:
crates/core/src/stats.rs:
crates/core/src/tile.rs:
