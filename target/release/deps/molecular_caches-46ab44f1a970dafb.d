/root/repo/target/release/deps/molecular_caches-46ab44f1a970dafb.d: src/lib.rs

/root/repo/target/release/deps/libmolecular_caches-46ab44f1a970dafb.rlib: src/lib.rs

/root/repo/target/release/deps/libmolecular_caches-46ab44f1a970dafb.rmeta: src/lib.rs

src/lib.rs:
