/root/repo/target/release/deps/molstat-be957b5f0be7dbea.d: crates/bench/src/bin/molstat.rs

/root/repo/target/release/deps/molstat-be957b5f0be7dbea: crates/bench/src/bin/molstat.rs

crates/bench/src/bin/molstat.rs:
