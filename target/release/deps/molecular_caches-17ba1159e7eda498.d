/root/repo/target/release/deps/molecular_caches-17ba1159e7eda498.d: src/lib.rs

/root/repo/target/release/deps/libmolecular_caches-17ba1159e7eda498.rlib: src/lib.rs

/root/repo/target/release/deps/libmolecular_caches-17ba1159e7eda498.rmeta: src/lib.rs

src/lib.rs:
