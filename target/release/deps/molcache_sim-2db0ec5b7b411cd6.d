/root/repo/target/release/deps/molcache_sim-2db0ec5b7b411cd6.d: crates/sim/src/lib.rs crates/sim/src/cmp.rs crates/sim/src/coherence.rs crates/sim/src/config.rs crates/sim/src/error.rs crates/sim/src/hierarchy.rs crates/sim/src/l1.rs crates/sim/src/model.rs crates/sim/src/partition.rs crates/sim/src/replacement.rs crates/sim/src/set_assoc.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/libmolcache_sim-2db0ec5b7b411cd6.rlib: crates/sim/src/lib.rs crates/sim/src/cmp.rs crates/sim/src/coherence.rs crates/sim/src/config.rs crates/sim/src/error.rs crates/sim/src/hierarchy.rs crates/sim/src/l1.rs crates/sim/src/model.rs crates/sim/src/partition.rs crates/sim/src/replacement.rs crates/sim/src/set_assoc.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/libmolcache_sim-2db0ec5b7b411cd6.rmeta: crates/sim/src/lib.rs crates/sim/src/cmp.rs crates/sim/src/coherence.rs crates/sim/src/config.rs crates/sim/src/error.rs crates/sim/src/hierarchy.rs crates/sim/src/l1.rs crates/sim/src/model.rs crates/sim/src/partition.rs crates/sim/src/replacement.rs crates/sim/src/set_assoc.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/cmp.rs:
crates/sim/src/coherence.rs:
crates/sim/src/config.rs:
crates/sim/src/error.rs:
crates/sim/src/hierarchy.rs:
crates/sim/src/l1.rs:
crates/sim/src/model.rs:
crates/sim/src/partition.rs:
crates/sim/src/replacement.rs:
crates/sim/src/set_assoc.rs:
crates/sim/src/stats.rs:
