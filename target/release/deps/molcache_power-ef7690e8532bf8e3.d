/root/repo/target/release/deps/molcache_power-ef7690e8532bf8e3.d: crates/power/src/lib.rs crates/power/src/accounting.rs crates/power/src/cacti.rs crates/power/src/calibrate.rs crates/power/src/energy.rs crates/power/src/geometry.rs crates/power/src/leakage.rs crates/power/src/tech.rs crates/power/src/timing.rs

/root/repo/target/release/deps/libmolcache_power-ef7690e8532bf8e3.rlib: crates/power/src/lib.rs crates/power/src/accounting.rs crates/power/src/cacti.rs crates/power/src/calibrate.rs crates/power/src/energy.rs crates/power/src/geometry.rs crates/power/src/leakage.rs crates/power/src/tech.rs crates/power/src/timing.rs

/root/repo/target/release/deps/libmolcache_power-ef7690e8532bf8e3.rmeta: crates/power/src/lib.rs crates/power/src/accounting.rs crates/power/src/cacti.rs crates/power/src/calibrate.rs crates/power/src/energy.rs crates/power/src/geometry.rs crates/power/src/leakage.rs crates/power/src/tech.rs crates/power/src/timing.rs

crates/power/src/lib.rs:
crates/power/src/accounting.rs:
crates/power/src/cacti.rs:
crates/power/src/calibrate.rs:
crates/power/src/energy.rs:
crates/power/src/geometry.rs:
crates/power/src/leakage.rs:
crates/power/src/tech.rs:
crates/power/src/timing.rs:
