/root/repo/target/release/deps/repro-dc443d25be6d9699.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-dc443d25be6d9699: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
