/root/repo/target/release/deps/molsim-8a7b5e5b4961c6a4.d: crates/bench/src/bin/molsim.rs

/root/repo/target/release/deps/molsim-8a7b5e5b4961c6a4: crates/bench/src/bin/molsim.rs

crates/bench/src/bin/molsim.rs:
