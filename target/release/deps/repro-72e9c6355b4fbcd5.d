/root/repo/target/release/deps/repro-72e9c6355b4fbcd5.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-72e9c6355b4fbcd5: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
