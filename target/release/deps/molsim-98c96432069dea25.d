/root/repo/target/release/deps/molsim-98c96432069dea25.d: crates/bench/src/bin/molsim.rs

/root/repo/target/release/deps/molsim-98c96432069dea25: crates/bench/src/bin/molsim.rs

crates/bench/src/bin/molsim.rs:
