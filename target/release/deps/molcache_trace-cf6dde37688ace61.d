/root/repo/target/release/deps/molcache_trace-cf6dde37688ace61.d: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/din.rs crates/trace/src/dist.rs crates/trace/src/error.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/loopgen.rs crates/trace/src/gen/mix.rs crates/trace/src/gen/phased.rs crates/trace/src/gen/pointer_chase.rs crates/trace/src/gen/reuse.rs crates/trace/src/gen/stride.rs crates/trace/src/gen/working_set.rs crates/trace/src/interleave.rs crates/trace/src/presets.rs crates/trace/src/rng.rs crates/trace/src/stats.rs

/root/repo/target/release/deps/libmolcache_trace-cf6dde37688ace61.rlib: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/din.rs crates/trace/src/dist.rs crates/trace/src/error.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/loopgen.rs crates/trace/src/gen/mix.rs crates/trace/src/gen/phased.rs crates/trace/src/gen/pointer_chase.rs crates/trace/src/gen/reuse.rs crates/trace/src/gen/stride.rs crates/trace/src/gen/working_set.rs crates/trace/src/interleave.rs crates/trace/src/presets.rs crates/trace/src/rng.rs crates/trace/src/stats.rs

/root/repo/target/release/deps/libmolcache_trace-cf6dde37688ace61.rmeta: crates/trace/src/lib.rs crates/trace/src/access.rs crates/trace/src/addr.rs crates/trace/src/din.rs crates/trace/src/dist.rs crates/trace/src/error.rs crates/trace/src/gen/mod.rs crates/trace/src/gen/loopgen.rs crates/trace/src/gen/mix.rs crates/trace/src/gen/phased.rs crates/trace/src/gen/pointer_chase.rs crates/trace/src/gen/reuse.rs crates/trace/src/gen/stride.rs crates/trace/src/gen/working_set.rs crates/trace/src/interleave.rs crates/trace/src/presets.rs crates/trace/src/rng.rs crates/trace/src/stats.rs

crates/trace/src/lib.rs:
crates/trace/src/access.rs:
crates/trace/src/addr.rs:
crates/trace/src/din.rs:
crates/trace/src/dist.rs:
crates/trace/src/error.rs:
crates/trace/src/gen/mod.rs:
crates/trace/src/gen/loopgen.rs:
crates/trace/src/gen/mix.rs:
crates/trace/src/gen/phased.rs:
crates/trace/src/gen/pointer_chase.rs:
crates/trace/src/gen/reuse.rs:
crates/trace/src/gen/stride.rs:
crates/trace/src/gen/working_set.rs:
crates/trace/src/interleave.rs:
crates/trace/src/presets.rs:
crates/trace/src/rng.rs:
crates/trace/src/stats.rs:
