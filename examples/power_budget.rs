//! Power budgeting with the CACTI-like model (Tables 3/4 territory).
//!
//! Sizes a set of cache organizations at 70 nm, prices a measured
//! workload's activity, and shows the molecular cache's dynamic-power
//! advantage over an equal-capacity traditional cache.
//!
//! ```text
//! cargo run --release --example power_budget
//! ```

use molecular_caches::core::{MolecularCache, MolecularConfig};
use molecular_caches::power::accounting::EnergyMeter;
use molecular_caches::power::cacti::analyze;
use molecular_caches::power::calibrate::{molecular_worst_power_w, molecule_report};
use molecular_caches::power::tech::TechNode;
use molecular_caches::sim::cmp::run_shared;
use molecular_caches::sim::{CacheConfig, CacheModel};
use molecular_caches::trace::presets::Benchmark;
use molecular_caches::trace::Asid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node = TechNode::nm70();

    println!("== array analysis at {} ==", node.name);
    for (label, size, assoc, ports) in [
        ("molecule 8KB DM", 8u64 << 10, 1u32, 1u32),
        ("L1-class 32KB 4way", 32 << 10, 4, 1),
        ("8MB DM (4 ports)", 8 << 20, 1, 4),
        ("8MB 4way (4 ports)", 8 << 20, 4, 4),
        ("8MB 8way (4 ports)", 8 << 20, 8, 4),
    ] {
        let cfg = CacheConfig::new(size, assoc, 64)?.with_ports(ports);
        let r = analyze(&cfg, &node);
        println!(
            "  {label:<22} {:>7.3} nJ/access  {:>6.0} MHz  org {}",
            r.energy_nj(),
            r.frequency_mhz(),
            r.organization
        );
    }

    // Measure real activity: four applications with compact hot sets on
    // a 2 MB molecular cache — the regime the selective-enablement power
    // argument is about (each region a modest slice of its home tile).
    let config = MolecularConfig::builder()
        .tile_molecules(64)
        .tiles_per_cluster(4)
        .clusters(1)
        .miss_rate_goal(0.25)
        .build()?;
    let mut cache = MolecularCache::new(config);
    run_shared(
        vec![
            Benchmark::Twolf.source(Asid::new(1), 3),
            Benchmark::Nat.source(Asid::new(2), 3),
            Benchmark::Crafty.source(Asid::new(3), 3),
            Benchmark::Parser.source(Asid::new(4), 3),
        ],
        &mut cache,
        2_000_000,
    )?;
    let activity = cache.activity();
    let meter = EnergyMeter::for_molecular(&molecule_report(&node), &node);

    // Equal-capacity traditional comparison at its own frequency.
    let trad = analyze(&CacheConfig::new(2 << 20, 4, 64)?.with_ports(4), &node);
    let freq = trad.frequency_mhz();
    let p_trad = trad.power_at_mhz(freq);
    let p_mol_avg = meter.power_at_mhz(&activity, freq);
    let p_mol_worst = molecular_worst_power_w(8 << 10, 512 << 10, &node, freq);

    println!("\n== 2MB L2 at {freq:.0} MHz ==");
    println!("  traditional 4-way:        {p_trad:.2} W");
    println!(
        "  molecular, measured avg:  {p_mol_avg:.2} W ({:.1} probes/access)",
        activity.probes_per_access()
    );
    println!("  molecular, worst case:    {p_mol_worst:.2} W");
    println!(
        "  measured advantage:       {:.0}%  (paper's 8MB headline: 29%)",
        (1.0 - p_mol_avg / p_trad) * 100.0
    );
    Ok(())
}
