//! Quickstart: build a molecular cache, run a workload, read the stats.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use molecular_caches::core::{MolecularCache, MolecularConfig};
use molecular_caches::sim::cmp::run_shared;
use molecular_caches::sim::CacheModel;
use molecular_caches::trace::presets::Benchmark;
use molecular_caches::trace::Asid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2 MB molecular cache: 1 cluster x 4 tiles x 64 molecules x 8 KB,
    // Randy replacement, 10 % miss-rate goal for every application.
    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(64)
        .tiles_per_cluster(4)
        .clusters(1)
        .miss_rate_goal(0.10)
        .build()?;
    let mut cache = MolecularCache::new(config);
    println!("cache: {}", cache.describe());

    // Two applications run concurrently; each gets its own exclusive,
    // dynamically sized cache region.
    let apps = vec![
        Benchmark::Ammp.source(Asid::new(1), 42),
        Benchmark::Gzip.source(Asid::new(2), 42),
    ];
    let summary = run_shared(apps, &mut cache, 2_000_000)?;

    println!("\nper-application results:");
    for (asid, stats) in &summary.per_app {
        println!(
            "  {asid}: {} accesses, miss rate {:.3}",
            stats.accesses,
            stats.miss_rate()
        );
    }
    println!("\nregion state after the run:");
    for snap in cache.snapshots() {
        println!(
            "  {}: {} molecules in {} rows (avg {:.1}), goal {:.0}%, lifetime miss rate {:.3}",
            snap.asid,
            snap.molecules,
            snap.rows,
            snap.avg_molecules,
            snap.goal * 100.0,
            snap.lifetime_miss_rate()
        );
    }
    println!(
        "\nactivity: {:.1} molecule probes/access, {} Ulmo searches, {} resize rounds",
        cache.activity().probes_per_access(),
        cache.activity().ulmo_searches,
        cache.resize_rounds()
    );
    Ok(())
}
