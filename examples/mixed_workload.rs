//! Server-consolidation scenario: twelve applications, three clusters.
//!
//! Reproduces the paper's Table 2 setting as a library-user workflow:
//! explicit application→cluster placement, per-application goals, and a
//! post-run QoS report.
//!
//! ```text
//! cargo run --release --example mixed_workload
//! ```

use molecular_caches::core::{MolecularCache, MolecularConfig, RegionPolicy, ResizeTrigger};
use molecular_caches::metrics::deviation::{average_deviation, MissRateGoal};
use molecular_caches::sim::cmp::run_shared;
use molecular_caches::trace::presets::Benchmark;
use molecular_caches::trace::Asid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 6 MB molecular cache: 3 clusters x 4 tiles x 512 KB.
    let mut builder = MolecularConfig::builder();
    builder
        .molecule_size(8 * 1024)
        .tile_molecules(64)
        .tiles_per_cluster(4)
        .clusters(3)
        .policy(RegionPolicy::Randy)
        .miss_rate_goal(0.25)
        .trigger(ResizeTrigger::PerAppAdaptive {
            initial_period: 25_000,
        });
    // Sequential grouping, as in the paper ("without giving consideration
    // to the nature of the mix").
    for i in 0..12usize {
        builder.assign_app_to_cluster(Asid::new(i as u16 + 1), i / 4);
    }
    let mut cache = MolecularCache::new(builder.build()?);

    let sources = Benchmark::MIXED12
        .iter()
        .enumerate()
        .map(|(i, b)| b.source(Asid::new(i as u16 + 1), 7))
        .collect();
    let summary = run_shared(sources, &mut cache, 3_000_000)?;

    println!("app        cluster  molecules  miss rate  goal  |dev|");
    println!("-------------------------------------------------------");
    let mut rates = Vec::new();
    for (i, b) in Benchmark::MIXED12.iter().enumerate() {
        let asid = Asid::new(i as u16 + 1);
        let mr = summary.app_miss_rate(asid);
        let snap = cache.region_snapshot(asid).expect("region exists");
        println!(
            "{:<10} {:^7}  {:>9}  {:>9.3}  {:>4.2}  {:>5.3}",
            b.name(),
            i / 4,
            snap.molecules,
            mr,
            snap.goal,
            (mr - snap.goal).abs()
        );
        rates.push((asid, mr));
    }
    let avg = average_deviation(rates, &MissRateGoal::uniform(0.25));
    println!("-------------------------------------------------------");
    println!(
        "average deviation from goal: {avg:.3}   (free molecules left: {})",
        cache.free_molecules()
    );
    Ok(())
}
