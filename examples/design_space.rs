//! Design-space exploration with a controlled workload.
//!
//! Uses the reuse-profile generator to build an application whose LRU
//! miss curve has a knee at exactly 512 KB, then sweeps molecular-cache
//! molecule sizes and charts the resulting miss rate and power — the
//! kind of study §3 of the paper motivates when it picks 8–32 KB
//! molecules.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use molecular_caches::core::{MolecularCache, MolecularConfig, ResizeTrigger};
use molecular_caches::metrics::chart::bar_chart;
use molecular_caches::power::accounting::EnergyMeter;
use molecular_caches::power::cacti::analyze;
use molecular_caches::power::tech::TechNode;
use molecular_caches::sim::cmp::run_accesses;
use molecular_caches::sim::{CacheConfig, CacheModel};
use molecular_caches::trace::gen::{ReuseBand, ReuseProfileSource, TraceSource};
use molecular_caches::trace::{Address, Asid};

const REFS: u64 = 600_000;

fn workload() -> ReuseProfileSource {
    // Reuse concentrated between 4K and 8K lines (256-512 KB): caches and
    // partitions beyond 512 KB capture almost everything.
    ReuseProfileSource::new(
        Asid::new(1),
        Address::new(0),
        vec![
            ReuseBand::new(1, 64, 0.35),
            ReuseBand::new(4096, 8192, 0.65),
        ],
        0.01,
        0.1,
        77,
    )
    .expect("valid profile")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let node = TechNode::nm70();
    let mut miss_rows = Vec::new();
    let mut power_rows = Vec::new();

    for molecule_kb in [8u64, 16, 32] {
        let molecule = molecule_kb * 1024;
        let config = MolecularConfig::builder()
            .molecule_size(molecule)
            .tile_molecules(((1 << 20) / 4 / molecule).max(1) as usize) // 1 MB total
            .tiles_per_cluster(4)
            .clusters(1)
            .miss_rate_goal(0.05)
            .trigger(ResizeTrigger::GlobalAdaptive {
                initial_period: 25_000,
            })
            .build()?;
        let mut cache = MolecularCache::new(config);
        let mut src = workload();
        let accesses = src.collect_n(REFS as usize);
        let summary = run_accesses(accesses, &mut cache, u64::MAX);
        let mol_cfg = CacheConfig::new(molecule, 1, 64)?;
        let meter = EnergyMeter::for_molecular(&analyze(&mol_cfg, &node), &node);
        let power = meter.power_at_mhz(&cache.activity(), 200.0);
        miss_rows.push((
            format!("{molecule_kb}KB molecules"),
            summary.global.miss_rate(),
        ));
        power_rows.push((format!("{molecule_kb}KB molecules"), power));
    }

    println!(
        "{}",
        bar_chart(
            "miss rate on a 1MB molecular cache (knee at 512KB)",
            &miss_rows,
            40
        )
    );
    println!(
        "{}",
        bar_chart("dynamic power @200MHz (W)", &power_rows, 40)
    );
    println!(
        "smaller molecules probe cheaper arrays but more of them; the paper's\n\
         8KB choice trades probe energy against allocation granularity."
    );
    Ok(())
}
