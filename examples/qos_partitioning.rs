//! QoS partitioning: the paper's motivating scenario (Table 1 → §3).
//!
//! A latency-sensitive application (`ammp`, small hot set) shares an L2
//! with a cache-hungry one (`mcf`). On a traditional shared cache the
//! small application's miss rate is wrecked by interference; the
//! molecular cache gives each its own region and holds `ammp` at its
//! goal.
//!
//! ```text
//! cargo run --release --example qos_partitioning
//! ```

use molecular_caches::core::{MolecularCache, MolecularConfig};
use molecular_caches::sim::cmp::run_shared;
use molecular_caches::sim::{CacheConfig, SetAssocCache};
use molecular_caches::trace::presets::Benchmark;
use molecular_caches::trace::Asid;

const REFS: u64 = 2_000_000;

fn workload() -> Vec<molecular_caches::trace::gen::BoxedSource> {
    vec![
        Benchmark::Ammp.source(Asid::new(1), 7),
        Benchmark::Mcf.source(Asid::new(2), 7),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Baseline 1: ammp alone on a 1 MB 4-way cache.
    let mut solo = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64)?);
    let s = run_shared(
        vec![Benchmark::Ammp.source(Asid::new(1), 7)],
        &mut solo,
        REFS / 2,
    )?;
    let solo_mr = s.app_miss_rate(Asid::new(1));
    println!("ammp alone on 1MB 4-way:        miss rate {solo_mr:.4}");

    // Baseline 2: shared with mcf — interference.
    let mut shared = SetAssocCache::lru(CacheConfig::new(1 << 20, 4, 64)?);
    let s = run_shared(workload(), &mut shared, REFS)?;
    let shared_mr = s.app_miss_rate(Asid::new(1));
    println!("ammp sharing 1MB 4-way with mcf: miss rate {shared_mr:.4}");

    // Molecular cache: same 1 MB, ammp gets a QoS goal of 2 %.
    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(32) // 256 KB tiles
        .tiles_per_cluster(4)
        .clusters(1)
        // mcf is best-effort: a ~95% "goal" means any miss rate is
        // acceptable, so Algorithm 1 withdraws its excess molecules
        // instead of letting it squat on the whole cache.
        .miss_rate_goal(0.95)
        .app_goal(Asid::new(1), 0.02) // ammp: tight QoS
        .build()?;
    let mut molecular = MolecularCache::new(config);
    let s = run_shared(workload(), &mut molecular, REFS)?;
    let mol_mr = s.app_miss_rate(Asid::new(1));
    println!("ammp on 1MB molecular (goal 2%): miss rate {mol_mr:.4}");

    for snap in molecular.snapshots() {
        println!(
            "  {}: {} molecules, goal {:.0}%, lifetime miss rate {:.3}",
            snap.asid,
            snap.molecules,
            snap.goal * 100.0,
            snap.lifetime_miss_rate()
        );
    }

    let interference = shared_mr / solo_mr.max(1e-9);
    println!(
        "\ninterference inflated ammp's miss rate {interference:.1}x; \
         the molecular region pulled it back to {mol_mr:.4} ({}the 2% goal)",
        if mol_mr <= 0.03 { "near " } else { "toward " }
    );
    Ok(())
}
