//! Watching Algorithm 1 track a phase-changing application.
//!
//! An application alternates between a small and a large working set;
//! the partition should grow in the large phase and give molecules back
//! in the small phase (§3.4's motivation for periodic resizing).
//!
//! ```text
//! cargo run --release --example resize_dynamics
//! ```

use molecular_caches::core::{InitialAllocation, MolecularCache, MolecularConfig, ResizeTrigger};
use molecular_caches::sim::{CacheModel, Request};
use molecular_caches::trace::gen::{BoxedSource, PhasedSource, TraceSource, WorkingSetSource};
use molecular_caches::trace::{Address, Asid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let asid = Asid::new(1);
    let small: BoxedSource = Box::new(WorkingSetSource::new(
        asid,
        Address::new(0),
        64 * 1024, // 64 KB phase
        1.0,
        0.5,
        0.1,
        11,
    ));
    let large: BoxedSource = Box::new(WorkingSetSource::new(
        asid,
        Address::new(1 << 30),
        1024 * 1024, // 1 MB phase
        0.8,
        0.4,
        0.1,
        12,
    ));
    let mut app = PhasedSource::new(asid, vec![(small, 400_000), (large, 400_000)], true);

    let config = MolecularConfig::builder()
        .molecule_size(8 * 1024)
        .tile_molecules(64)
        .tiles_per_cluster(4)
        .clusters(1)
        .miss_rate_goal(0.05)
        .initial_allocation(InitialAllocation::Molecules(4))
        .trigger(ResizeTrigger::Constant { period: 20_000 })
        .build()?;
    let mut cache = MolecularCache::new(config);

    println!("refs(k)  phase  molecules  last-window-miss-rate");
    println!("-------------------------------------------------");
    let mut driven: u64 = 0;
    for step in 0..16 {
        for _ in 0..100_000u64 {
            let acc = app.next_access().expect("phased source cycles");
            cache.access(Request::from(acc));
            driven += 1;
        }
        let snap = cache.region_snapshot(asid).expect("region exists");
        println!(
            "{:>6}   {:>5}  {:>9}  {:>12.3}",
            driven / 1000,
            if (step / 4) % 2 == 0 {
                "small"
            } else {
                "large"
            },
            snap.molecules,
            snap.last_window_miss_rate
        );
    }
    println!(
        "\n{} resize rounds; partition breathed between the phases.",
        cache.resize_rounds()
    );
    Ok(())
}
