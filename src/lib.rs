//! # molecular-caches — facade crate
//!
//! Reproduction of *"Molecular Caches: A caching structure for dynamic
//! creation of application-specific Heterogeneous cache regions"*
//! (MICRO 2006). This crate re-exports the workspace's component crates
//! under one roof; see the README for the architecture overview and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction details.
//!
//! * [`trace`] — synthetic workload generation ([`molcache_trace`]).
//! * [`sim`] — traditional cache simulators and the CMP driver
//!   ([`molcache_sim`]).
//! * [`power`] — CACTI-like energy/timing model ([`molcache_power`]).
//! * [`core`] — the molecular cache itself ([`molcache_core`]).
//! * [`metrics`] — QoS metrics and reporting ([`molcache_metrics`]).
//!
//! ## Example: two applications, one molecular cache
//!
//! ```
//! use molecular_caches::core::{MolecularCache, MolecularConfig};
//! use molecular_caches::sim::cmp::run_shared;
//! use molecular_caches::trace::{presets::Benchmark, Asid};
//!
//! // 2 MB molecular cache: 1 cluster x 4 tiles x 64 molecules x 8 KB.
//! let config = MolecularConfig::builder()
//!     .tile_molecules(64)
//!     .tiles_per_cluster(4)
//!     .clusters(1)
//!     .miss_rate_goal(0.10)
//!     .build()?;
//! let mut cache = MolecularCache::new(config);
//!
//! let apps = vec![
//!     Benchmark::Ammp.source(Asid::new(1), 42),
//!     Benchmark::Gzip.source(Asid::new(2), 42),
//! ];
//! let summary = run_shared(apps, &mut cache, 200_000)?;
//! assert_eq!(summary.per_app.len(), 2);
//! assert!(summary.global.miss_rate() < 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use molcache_core as core;
pub use molcache_metrics as metrics;
pub use molcache_power as power;
pub use molcache_sim as sim;
pub use molcache_trace as trace;
